//! Physical register files with readiness, WIB wait bits, consumer
//! subscription lists, and the two-level timing model.
//!
//! One `RegFile` exists per register class (integer / floating point).
//! Besides the value and ready bit, every physical register carries the
//! WIB's **wait bit**: `Some(column)` means the value will be produced
//! (transitively) by the outstanding load miss tracked by that bit-vector
//! column, so consumers are "pretend ready" and belong in the WIB.

use crate::types::{ColumnId, PhysReg, Seq};

/// Null link in the [`L1Tracker`]'s intrusive LRU list.
const LRU_NIL: u16 = u16::MAX;

/// Recency tracker for the two-level register file's first level.
///
/// An intrusive doubly-linked list threaded through per-register link
/// arrays keeps strict LRU order with O(1), allocation-free `touch` —
/// this sits on the per-operand issue path, where the ordered-set
/// representation it replaced allocated tree nodes on every access.
#[derive(Debug, Clone)]
struct L1Tracker {
    capacity: usize,
    in_l1: Vec<bool>,
    /// Next register toward the MRU end (`LRU_NIL` at the head).
    prev: Vec<u16>,
    /// Next register toward the LRU end (`LRU_NIL` at the tail).
    next: Vec<u16>,
    /// Most recently used register.
    head: u16,
    /// Least recently used register (the eviction victim).
    tail: u16,
    len: usize,
}

impl L1Tracker {
    fn new(capacity: usize, regs: usize) -> L1Tracker {
        let mut t = L1Tracker {
            capacity,
            in_l1: vec![false; regs],
            prev: vec![LRU_NIL; regs],
            next: vec![LRU_NIL; regs],
            head: LRU_NIL,
            tail: LRU_NIL,
            len: 0,
        };
        // The architectural registers start in the first level.
        for r in 0..capacity.min(regs) {
            t.insert(r as u16);
        }
        t
    }

    fn unlink(&mut self, r: u16) {
        let (p, n) = (self.prev[r as usize], self.next[r as usize]);
        match p {
            LRU_NIL => self.head = n,
            _ => self.next[p as usize] = n,
        }
        match n {
            LRU_NIL => self.tail = p,
            _ => self.prev[n as usize] = p,
        }
    }

    fn touch(&mut self, r: u16) {
        let i = r as usize;
        if self.in_l1[i] {
            self.unlink(r);
        } else {
            self.in_l1[i] = true;
            self.len += 1;
        }
        self.prev[i] = LRU_NIL;
        self.next[i] = self.head;
        match self.head {
            LRU_NIL => self.tail = r,
            h => self.prev[h as usize] = r,
        }
        self.head = r;
    }

    /// Insert `r` into the L1, evicting the LRU register if full.
    fn insert(&mut self, r: u16) {
        if !self.in_l1[r as usize] && self.len >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, LRU_NIL);
            self.unlink(victim);
            self.in_l1[victim as usize] = false;
            self.len -= 1;
        }
        self.touch(r);
    }

    fn contains(&self, r: u16) -> bool {
        self.in_l1[r as usize]
    }
}

/// Read-timing organization of a physical register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegTiming {
    /// Every read is single-cycle.
    Flat,
    /// Two-level: reads outside the small first level pay `l2_latency`
    /// (the port budget is enforced by the issue logic).
    TwoLevel {
        /// First-level capacity.
        l1_regs: usize,
        /// Extra read latency on a first-level miss.
        l2_latency: u64,
    },
    /// Multi-banked: each bank serves `ports` reads per cycle; excess
    /// reads pay `conflict_penalty`.
    Banked {
        /// Number of banks (power of two).
        banks: usize,
        /// Read ports per bank per cycle.
        ports: u32,
        /// Extra latency on a port conflict.
        conflict_penalty: u64,
    },
}

#[derive(Debug, Clone)]
enum Timing {
    Flat,
    TwoLevel {
        l1: L1Tracker,
        l2_latency: u64,
    },
    Banked {
        banks: usize,
        ports: u32,
        conflict_penalty: u64,
        used: Vec<u32>,
    },
}

/// One class's physical register file.
#[derive(Debug, Clone)]
pub struct RegFile {
    values: Vec<u64>,
    ready: Vec<bool>,
    wait: Vec<Option<ColumnId>>,
    consumers: Vec<Vec<Seq>>,
    free: Vec<u16>,
    timing: Timing,
    /// Second-level reads performed (two-level organization).
    pub l2_reads: u64,
    /// Bank port conflicts (multi-banked organization).
    pub bank_conflicts: u64,
}

impl RegFile {
    /// Build a file of `size` physical registers, the first `arch` of
    /// which hold committed architectural state (ready, value 0) and the
    /// rest of which are free.
    ///
    /// # Panics
    /// Panics if `size < arch` or a banked organization has zero banks.
    pub fn new(size: usize, arch: usize, timing: RegTiming) -> RegFile {
        assert!(size >= arch, "need at least {arch} physical registers");
        let timing = match timing {
            RegTiming::Flat => Timing::Flat,
            RegTiming::TwoLevel {
                l1_regs,
                l2_latency,
            } => Timing::TwoLevel {
                l1: L1Tracker::new(l1_regs, size),
                l2_latency,
            },
            RegTiming::Banked {
                banks,
                ports,
                conflict_penalty,
            } => {
                assert!(banks > 0);
                Timing::Banked {
                    banks,
                    ports,
                    conflict_penalty,
                    used: vec![0; banks],
                }
            }
        };
        RegFile {
            values: vec![0; size],
            ready: (0..size).map(|i| i < arch).collect(),
            wait: vec![None; size],
            consumers: vec![Vec::new(); size],
            free: (arch..size).rev().map(|i| i as u16).collect(),
            timing,
            l2_reads: 0,
            bank_conflicts: 0,
        }
    }

    /// Reset per-cycle port accounting (multi-banked organization). Call
    /// once at the start of each issue phase.
    pub fn begin_cycle(&mut self) {
        if let Timing::Banked { used, .. } = &mut self.timing {
            used.fill(0);
        }
    }

    /// Number of free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Allocate a physical register for a new rename; `None` when the free
    /// list is empty (dispatch must stall).
    pub fn alloc(&mut self) -> Option<PhysReg> {
        let r = self.free.pop()?;
        let i = r as usize;
        self.values[i] = 0;
        self.ready[i] = false;
        self.wait[i] = None;
        self.consumers[i].clear();
        Some(PhysReg(r))
    }

    /// Return a register to the free list (commit frees the previous
    /// mapping; squash frees the new one).
    pub fn release(&mut self, r: PhysReg) {
        debug_assert!(!self.free.contains(&r.0), "double free of {r}");
        self.wait[r.0 as usize] = None;
        self.consumers[r.0 as usize].clear();
        self.free.push(r.0);
    }

    /// Raw value bits (only meaningful once ready).
    pub fn value(&self, r: PhysReg) -> u64 {
        self.values[r.0 as usize]
    }

    /// True once the producer has written back.
    pub fn is_ready(&self, r: PhysReg) -> bool {
        self.ready[r.0 as usize]
    }

    /// The WIB column this register waits on, if its producer chain hangs
    /// off an outstanding load miss.
    pub fn wait_column(&self, r: PhysReg) -> Option<ColumnId> {
        self.wait[r.0 as usize]
    }

    /// Mark `r` produced with `value`; clears any wait bit. Drains the
    /// subscribed consumers into `woken` (appending), keeping the
    /// register's subscription list allocated for reuse — the hot
    /// writeback path runs allocation-free this way.
    pub fn write_into(&mut self, r: PhysReg, value: u64, woken: &mut Vec<Seq>) {
        let i = r.0 as usize;
        self.values[i] = value;
        self.ready[i] = true;
        self.wait[i] = None;
        if let Timing::TwoLevel { l1, .. } = &mut self.timing {
            l1.insert(r.0);
        }
        woken.append(&mut self.consumers[i]);
    }

    /// Convenience wrapper around [`RegFile::write_into`] returning the
    /// woken consumers as a fresh vector.
    pub fn write(&mut self, r: PhysReg, value: u64) -> Vec<Seq> {
        let mut woken = Vec::new();
        self.write_into(r, value, &mut woken);
        woken
    }

    /// Force a committed architectural value (used when seeding the
    /// machine from a warmed-up interpreter state).
    pub fn poke(&mut self, r: PhysReg, value: u64) {
        self.values[r.0 as usize] = value;
        self.ready[r.0 as usize] = true;
    }

    /// Set the WIB wait bit: the value of `r` will arrive when `column`'s
    /// load completes. Drains the subscribed consumers — which become
    /// pretend-ready — into `woken` (appending), keeping the subscription
    /// list allocated for reuse.
    pub fn set_wait_into(&mut self, r: PhysReg, column: ColumnId, woken: &mut Vec<Seq>) {
        let i = r.0 as usize;
        debug_assert!(!self.ready[i], "wait bit on a ready register");
        self.wait[i] = Some(column);
        woken.append(&mut self.consumers[i]);
    }

    /// Convenience wrapper around [`RegFile::set_wait_into`] returning the
    /// woken consumers as a fresh vector.
    pub fn set_wait(&mut self, r: PhysReg, column: ColumnId) -> Vec<Seq> {
        let mut woken = Vec::new();
        self.set_wait_into(r, column, &mut woken);
        woken
    }

    /// Clear the wait bit without producing a value (the owner was
    /// reinserted from the WIB and will execute normally).
    pub fn clear_wait(&mut self, r: PhysReg) {
        self.wait[r.0 as usize] = None;
    }

    /// Subscribe instruction `seq` to wake when `r` becomes ready or gains
    /// a wait bit.
    pub fn subscribe(&mut self, r: PhysReg, seq: Seq) {
        self.consumers[r.0 as usize].push(seq);
    }

    /// Drain `r`'s subscribers without touching its readiness or wait
    /// state. The delay-tracking backend uses this to reroute consumers of
    /// a known-latency miss into its delay queue; consumers it cannot park
    /// must be re-[`RegFile::subscribe`]d.
    pub fn take_waiters_into(&mut self, r: PhysReg, woken: &mut Vec<Seq>) {
        woken.append(&mut self.consumers[r.0 as usize]);
    }

    /// Extra cycles to read `r`: a two-level file promotes the register
    /// into the first level; a banked file consumes one of the bank's
    /// per-cycle ports. Call once per operand actually issued.
    pub fn read_penalty(&mut self, r: PhysReg) -> u64 {
        match &mut self.timing {
            Timing::Flat => 0,
            Timing::TwoLevel { l1, l2_latency } => {
                if l1.contains(r.0) {
                    l1.touch(r.0);
                    0
                } else {
                    self.l2_reads += 1;
                    l1.insert(r.0);
                    *l2_latency
                }
            }
            Timing::Banked {
                banks,
                ports,
                conflict_penalty,
                used,
            } => {
                let bank = r.0 as usize % *banks;
                if used[bank] < *ports {
                    used[bank] += 1;
                    0
                } else {
                    self.bank_conflicts += 1;
                    *conflict_penalty
                }
            }
        }
    }

    /// Would reading `r` hit the two-level file's second level? (No state
    /// change; used to budget L2 read ports before committing to an
    /// issue. Banked conflicts are charged as latency instead.)
    pub fn needs_l2_read(&self, r: PhysReg) -> bool {
        match &self.timing {
            Timing::TwoLevel { l1, .. } => !l1.contains(r.0),
            _ => false,
        }
    }

    /// Machine-check helper: total physical registers in the file.
    pub fn num_regs(&self) -> usize {
        self.values.len()
    }

    /// Machine-check helper: true if `r` is on the free list.
    pub fn is_free(&self, r: PhysReg) -> bool {
        self.free.contains(&r.0)
    }

    /// Machine-check helper: every register currently carrying a wait bit,
    /// with the column it hangs off.
    pub fn waiting_regs(&self) -> impl Iterator<Item = (PhysReg, ColumnId)> + '_ {
        self.wait
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.map(|c| (PhysReg(i as u16), c)))
    }

    /// Machine-check: free-list conservation (every id in range, no
    /// duplicates, freed registers carry no residual wait bits or
    /// subscriptions) and, for the two-level organization, full L1-LRU
    /// intrusive-list integrity.
    pub fn check_invariants(&self) -> Result<(), String> {
        let fail = |msg: String| Err(format!("regfile: {msg}"));
        let size = self.values.len();
        let mut freed = vec![false; size];
        for &r in &self.free {
            let Some(cell) = freed.get_mut(r as usize) else {
                return fail(format!("free register {r} out of range"));
            };
            if *cell {
                return fail(format!("register {r} on the free list twice"));
            }
            *cell = true;
            if self.wait[r as usize].is_some() {
                return fail(format!("free register {r} retains a wait bit"));
            }
            if !self.consumers[r as usize].is_empty() {
                return fail(format!("free register {r} retains subscribers"));
            }
        }
        for (r, w) in self.wait.iter().enumerate() {
            if w.is_some() && self.ready[r] {
                return fail(format!("register {r} both ready and waiting"));
            }
        }
        if let Timing::TwoLevel { l1, .. } = &self.timing {
            // Walk head -> tail: link symmetry, membership flags, length.
            let mut cursor = l1.head;
            let mut prev = LRU_NIL;
            let mut walked = 0usize;
            while cursor != LRU_NIL {
                if walked > size {
                    return fail("L1 LRU list cycle".into());
                }
                let i = cursor as usize;
                if !l1.in_l1[i] {
                    return fail(format!("register {cursor} linked but not flagged in L1"));
                }
                if l1.prev[i] != prev {
                    return fail(format!(
                        "register {cursor} prev link {} != walk prev {prev}",
                        l1.prev[i]
                    ));
                }
                prev = cursor;
                cursor = l1.next[i];
                walked += 1;
            }
            if l1.tail != prev {
                return fail(format!("L1 tail {} != last walked {prev}", l1.tail));
            }
            if walked != l1.len {
                return fail(format!("L1 len {} != walked {walked}", l1.len));
            }
            if l1.len > l1.capacity {
                return fail(format!(
                    "L1 len {} exceeds capacity {}",
                    l1.len, l1.capacity
                ));
            }
            let flagged = l1.in_l1.iter().filter(|f| **f).count();
            if flagged != l1.len {
                return fail(format!("L1 membership flags {flagged} != len {}", l1.len));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state() {
        let rf = RegFile::new(128, 32, RegTiming::Flat);
        assert_eq!(rf.free_count(), 96);
        assert!(rf.is_ready(PhysReg(0)));
        assert!(!rf.is_ready(PhysReg(32)));
    }

    #[test]
    fn alloc_release_round_trip() {
        let mut rf = RegFile::new(40, 32, RegTiming::Flat);
        let mut got = Vec::new();
        while let Some(r) = rf.alloc() {
            got.push(r);
        }
        assert_eq!(got.len(), 8);
        assert_eq!(rf.free_count(), 0);
        for r in got {
            rf.release(r);
        }
        assert_eq!(rf.free_count(), 8);
    }

    #[test]
    fn write_wakes_consumers() {
        let mut rf = RegFile::new(64, 32, RegTiming::Flat);
        let r = rf.alloc().unwrap();
        rf.subscribe(r, 100);
        rf.subscribe(r, 101);
        let woken = rf.write(r, 42);
        assert_eq!(woken, vec![100, 101]);
        assert!(rf.is_ready(r));
        assert_eq!(rf.value(r), 42);
        // Consumers were drained.
        assert!(rf.write(r, 43).is_empty());
    }

    #[test]
    fn wait_bits() {
        let mut rf = RegFile::new(64, 32, RegTiming::Flat);
        let r = rf.alloc().unwrap();
        rf.subscribe(r, 7);
        let woken = rf.set_wait(r, 3);
        assert_eq!(woken, vec![7]);
        assert_eq!(rf.wait_column(r), Some(3));
        assert!(!rf.is_ready(r));
        rf.clear_wait(r);
        assert_eq!(rf.wait_column(r), None);
        // Writing clears wait too.
        rf.set_wait(r, 4);
        rf.write(r, 1);
        assert_eq!(rf.wait_column(r), None);
    }

    #[test]
    fn alloc_resets_state() {
        let mut rf = RegFile::new(34, 32, RegTiming::Flat);
        let r = rf.alloc().unwrap();
        rf.write(r, 9);
        rf.release(r);
        let r2 = rf.alloc().unwrap();
        // Might be a different register, but if recycled it must be clean.
        if r2 == r {
            assert!(!rf.is_ready(r2));
            assert_eq!(rf.wait_column(r2), None);
        }
    }

    #[test]
    fn two_level_penalties() {
        // 4 registers in L1, 4-cycle L2.
        let mut rf = RegFile::new(
            64,
            32,
            RegTiming::TwoLevel {
                l1_regs: 4,
                l2_latency: 4,
            },
        );
        // Arch regs 0..4 seeded into L1.
        assert_eq!(rf.read_penalty(PhysReg(0)), 0);
        // Reg 10 is not in L1: first read pays, second is free.
        assert!(rf.needs_l2_read(PhysReg(10)));
        assert_eq!(rf.read_penalty(PhysReg(10)), 4);
        assert_eq!(rf.read_penalty(PhysReg(10)), 0);
        assert_eq!(rf.l2_reads, 1);
    }

    #[test]
    fn two_level_eviction_is_lru() {
        let mut rf = RegFile::new(
            64,
            32,
            RegTiming::TwoLevel {
                l1_regs: 2,
                l2_latency: 4,
            },
        );
        // Capacity 2: after touching 3 distinct regs, the least recent
        // falls out.
        rf.read_penalty(PhysReg(40)); // L1: {40, ...}
        rf.read_penalty(PhysReg(41));
        rf.read_penalty(PhysReg(40)); // refresh 40
        rf.read_penalty(PhysReg(42)); // evicts 41
        assert!(!rf.needs_l2_read(PhysReg(40)));
        assert!(rf.needs_l2_read(PhysReg(41)));
        assert!(!rf.needs_l2_read(PhysReg(42)));
    }

    #[test]
    fn banked_port_conflicts() {
        let timing = RegTiming::Banked {
            banks: 2,
            ports: 1,
            conflict_penalty: 1,
        };
        let mut rf = RegFile::new(64, 32, timing);
        rf.begin_cycle();
        // Regs 0 and 2 share bank 0; the second read this cycle conflicts.
        assert_eq!(rf.read_penalty(PhysReg(0)), 0);
        assert_eq!(rf.read_penalty(PhysReg(2)), 1);
        // Bank 1 is untouched.
        assert_eq!(rf.read_penalty(PhysReg(1)), 0);
        assert_eq!(rf.bank_conflicts, 1);
        // Fresh cycle: ports reset.
        rf.begin_cycle();
        assert_eq!(rf.read_penalty(PhysReg(0)), 0);
    }

    #[test]
    fn banked_file_never_needs_l2_budget() {
        let timing = RegTiming::Banked {
            banks: 4,
            ports: 2,
            conflict_penalty: 1,
        };
        let rf = RegFile::new(64, 32, timing);
        assert!(!rf.needs_l2_read(PhysReg(50)));
    }

    #[test]
    fn checker_covers_lru_list() {
        let mut rf = RegFile::new(
            64,
            32,
            RegTiming::TwoLevel {
                l1_regs: 4,
                l2_latency: 4,
            },
        );
        rf.check_invariants().unwrap();
        for r in [40u16, 41, 42, 40, 43, 44] {
            rf.read_penalty(PhysReg(r));
            rf.check_invariants().unwrap();
        }
        let r = rf.alloc().unwrap();
        rf.write(r, 1);
        rf.release(r);
        rf.check_invariants().unwrap();
        // Simulate a corrupted link and expect the walk to object.
        if let Timing::TwoLevel { l1, .. } = &mut rf.timing {
            let head = l1.head as usize;
            l1.prev[head] = 3;
        }
        assert!(rf.check_invariants().is_err());
    }

    #[test]
    fn writes_promote_into_l1() {
        let mut rf = RegFile::new(
            64,
            32,
            RegTiming::TwoLevel {
                l1_regs: 2,
                l2_latency: 4,
            },
        );
        let r = rf.alloc().unwrap();
        rf.write(r, 5);
        assert_eq!(rf.read_penalty(r), 0);
    }
}
