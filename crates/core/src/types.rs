//! Small identifier types used throughout the pipeline.

use std::fmt;

/// A physical register: a class-local index into one of the two physical
/// register files (integer or floating point). The class travels with the
/// architectural register it renames, so `PhysReg` itself is just an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysReg(pub u16);

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Global dynamic-instruction sequence number. Monotonically increasing
/// over all dispatched instructions (wrong-path included) and **never
/// reused**, even after a squash — stale completion events identify dead
/// instructions by failing to find their sequence number in the active
/// list.
pub type Seq = u64;

/// A source operand reference: which register file, which register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrcRef {
    /// Register class (selects the physical file).
    pub class: wib_isa::reg::RegClass,
    /// Physical register within that file.
    pub preg: PhysReg,
}

/// Index of a bit-vector column in the WIB (one per tracked load miss).
pub type ColumnId = u16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_reg_display_and_order() {
        assert_eq!(PhysReg(7).to_string(), "p7");
        assert!(PhysReg(3) < PhysReg(4));
    }
}
