//! The out-of-order core: a 7-stage, 8-wide pipeline loosely modeled on
//! the Alpha 21264 (paper Table 1), with an optional Waiting Instruction
//! Buffer.
//!
//! The model is **execution-driven**: values live in the physical register
//! files and are computed in dataflow order by the execute stage; stores
//! update architectural memory at commit; loads execute speculatively with
//! store-queue forwarding and order-violation replay. Wrong-path
//! instructions after a branch misprediction are genuinely fetched,
//! renamed and executed until the branch resolves.
//!
//! An optional co-simulation checker retires a reference interpreter in
//! lockstep with commit and cross-checks every PC and destination value —
//! the integration test suite runs every configuration with it enabled.

use crate::cancel::CancelToken;
use crate::config::{Backend, MachineConfig, RegFileConfig, WibOrganization, WibTrigger};
use crate::cpi::CpiCategory;
use crate::delay::DelayQueue;
use crate::events::{EventSink, PipeEvent};
use crate::fu::FuPool;
use crate::iq::{IqEntry, IssueQueue, SrcStatus};
use crate::lsq::{ForwardResult, LoadStoreQueue};
use crate::profile::{StageProfile, PROFILE_SAMPLE_PERIOD, STAGE_COUNT};
use crate::regfile::{RegFile, RegTiming};
use crate::rename::RenameMap;
use crate::rob::{ActiveList, BranchInfo, MissKind, RobEntry};
use crate::runahead::RunaheadState;
use crate::stats::{IntervalSample, SimStats};
use crate::trace::{InstTrace, Trace};
use crate::types::{PhysReg, Seq, SrcRef};
use crate::window::Window;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use wib_bpred::btb::Btb;
use wib_bpred::dir::CombinedPredictor;
use wib_bpred::ras::Ras;
use wib_bpred::storewait::StoreWaitTable;
use wib_isa::exec;
use wib_isa::inst::Inst;
use wib_isa::interp::Interpreter;
use wib_isa::mem::{Memory, PagedMemory};
use wib_isa::program::Program;
use wib_isa::reg::{ArchReg, RegClass, NUM_ARCH_REGS};
use wib_mem::cache::AccessKind;
use wib_mem::hier::MemoryHierarchy;

/// How long to run the detailed simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimit {
    max_insts: u64,
    max_cycles: u64,
}

impl RunLimit {
    /// Stop after `n` committed instructions (or `halt`, whichever is
    /// first). A generous cycle backstop prevents runaway simulations.
    pub fn instructions(n: u64) -> RunLimit {
        RunLimit {
            max_insts: n,
            max_cycles: n.saturating_mul(1000).max(1_000_000),
        }
    }

    /// Stop after `n` cycles (or `halt`).
    pub fn cycles(n: u64) -> RunLimit {
        RunLimit {
            max_insts: u64::MAX,
            max_cycles: n,
        }
    }
}

/// Outcome of a detailed-simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Accumulated statistics.
    pub stats: SimStats,
    /// True if the program executed `halt`.
    pub halted: bool,
    /// True if the run was stopped early by a [`CancelToken`] (explicit
    /// cancel or deadline expiry). Statistics then cover only the cycles
    /// simulated before the epoch-boundary poll noticed, and must not be
    /// compared against — or cached as — a completed run.
    pub cancelled: bool,
    /// Sampled wall-clock attribution of engine time to pipeline stages
    /// (one cycle in [`PROFILE_SAMPLE_PERIOD`] is timed). Host-machine
    /// telemetry, *not* simulated state: two identical runs produce
    /// identical `stats` but different profiles.
    pub profile: StageProfile,
}

impl RunResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// A configured processor, ready to run programs.
///
/// Each [`Processor::run_program`] call simulates from a cold (or warmed)
/// machine state; the `Processor` itself is reusable.
#[derive(Debug, Clone)]
pub struct Processor {
    cfg: MachineConfig,
    cosim: bool,
    machine_check: bool,
    no_skip: bool,
    cancel: Option<CancelToken>,
}

impl Processor {
    /// Build a processor.
    ///
    /// # Panics
    /// Panics if the configuration fails [`MachineConfig::validate`].
    pub fn new(cfg: MachineConfig) -> Processor {
        if let Err(e) = cfg.validate() {
            panic!("invalid machine configuration: {e}");
        }
        Processor {
            cfg,
            cosim: false,
            machine_check: false,
            no_skip: false,
            cancel: None,
        }
    }

    /// The configuration this processor was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Enable the co-simulation checker: every committed instruction is
    /// cross-checked against the reference interpreter.
    ///
    /// # Panics (during runs)
    /// A run panics if the pipeline ever diverges from the interpreter —
    /// that is a simulator bug, not a user error.
    pub fn enable_cosim(&mut self) -> &mut Self {
        self.cosim = true;
        self
    }

    /// Run every machine-check invariant (see [`crate::check`]) once per
    /// simulated cycle, regardless of the `checked` cargo feature. Used by
    /// the differential fuzzer and repro replays.
    ///
    /// # Panics (during runs)
    /// A run panics on the first cycle whose state violates an invariant —
    /// that is a simulator bug, not a user error.
    pub fn enable_machine_check(&mut self) -> &mut Self {
        self.machine_check = true;
        self
    }

    /// Disable the quiescent-cycle fast-forward optimization: simulate
    /// every cycle individually. The result must be bit-identical to a
    /// fast-forwarding run — the differential fuzzer exercises exactly
    /// that equivalence.
    pub fn disable_fast_forward(&mut self) -> &mut Self {
        self.no_skip = true;
        self
    }

    /// Attach a cooperative [`CancelToken`]: runs stop at the next
    /// stats-epoch boundary once the token trips (explicit cancel or
    /// deadline), returning with [`RunResult::cancelled`] set. The token
    /// is polled once per epoch (and every 4096 warm-up instructions),
    /// so the cycle loop stays allocation- and syscall-free.
    pub fn set_cancel_token(&mut self, token: CancelToken) -> &mut Self {
        self.cancel = Some(token);
        self
    }

    fn build_engine<'c>(&'c self, program: &Program) -> Engine<'c> {
        let mut engine = Engine::new(&self.cfg, program, self.cosim);
        engine.machine_check = self.machine_check;
        engine.no_skip = self.no_skip;
        engine.cancel = self.cancel.clone();
        engine
    }

    /// Run `program` from reset until `halt` or the limit.
    pub fn run_program(&self, program: &Program, limit: RunLimit) -> RunResult {
        let mut engine = self.build_engine(program);
        engine.run(limit)
    }

    /// Fast-forward `warmup` instructions on the reference interpreter
    /// (warming caches, TLBs and predictors are left cold), then run the
    /// detailed simulation from that architectural state — the paper's
    /// skip-then-measure methodology.
    pub fn run_program_warmed(&self, program: &Program, warmup: u64, limit: RunLimit) -> RunResult {
        let mut engine = self.build_engine(program);
        engine.warm_up(warmup);
        engine.run(limit)
    }

    /// Run with pipeline tracing: the lifecycle (fetch / dispatch / issue
    /// / complete / retire cycles, WIB trips) of the first
    /// `trace_capacity` committed instructions is captured alongside the
    /// normal result.
    pub fn run_program_traced(
        &self,
        program: &Program,
        limit: RunLimit,
        trace_capacity: usize,
    ) -> (RunResult, Trace) {
        self.run_program_with_trace(program, limit, Trace::new(trace_capacity))
    }

    /// Like [`Processor::run_program_traced`], but the trace is a ring
    /// buffer keeping the *last* `trace_capacity` committed instructions.
    pub fn run_program_traced_tail(
        &self,
        program: &Program,
        limit: RunLimit,
        trace_capacity: usize,
    ) -> (RunResult, Trace) {
        self.run_program_with_trace(program, limit, Trace::new_tail(trace_capacity))
    }

    fn run_program_with_trace(
        &self,
        program: &Program,
        limit: RunLimit,
        trace: Trace,
    ) -> (RunResult, Trace) {
        let mut engine = self.build_engine(program);
        engine.trace = Some(trace);
        let result = engine.run(limit);
        (result, engine.trace.take().expect("installed above"))
    }

    /// Run with a pipeline event sink attached: every fetch, dispatch,
    /// issue, WIB insert/extract, completion, commit, squash and cache
    /// miss is reported to `sink` (see [`crate::events`]).
    pub fn run_program_observed(
        &self,
        program: &Program,
        limit: RunLimit,
        sink: &mut dyn EventSink,
    ) -> RunResult {
        let mut engine = self.build_engine(program);
        engine.sink = Some(sink);
        engine.run(limit)
    }

    /// [`Processor::run_program_warmed`] with a pipeline event sink
    /// attached (warm-up itself emits no events).
    pub fn run_program_warmed_observed(
        &self,
        program: &Program,
        warmup: u64,
        limit: RunLimit,
        sink: &mut dyn EventSink,
    ) -> RunResult {
        let mut engine = self.build_engine(program);
        engine.warm_up(warmup);
        engine.sink = Some(sink);
        engine.run(limit)
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Non-load instruction finishes execution.
    Complete(Seq),
    /// Load address generation done: access the D-cache / store queue.
    LoadAddr(Seq),
    /// Load data arrives.
    LoadData(Seq),
}

#[derive(Debug, Clone)]
struct Fetched {
    pc: u32,
    inst: Inst,
    ready_at: u64,
    fetched_at: u64,
    branch: Option<BranchInfo>,
    hist_before: u32,
    ras_before: wib_bpred::ras::RasCheckpoint,
}

/// One scheduled pipeline event. Orders by `(at, order)` where `order` is
/// a monotone insertion counter, so a min-heap pops events in exactly the
/// sequence the old `BTreeMap<u64, Vec<Event>>` produced (ascending cycle,
/// insertion order within a cycle) without allocating a map node and a
/// vector per busy cycle.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    at: u64,
    order: u64,
    ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Scheduled) -> bool {
        self.at == other.at && self.order == other.order
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Scheduled) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Scheduled) -> std::cmp::Ordering {
        (self.at, self.order).cmp(&(other.at, other.order))
    }
}

/// Cycles a committed-store retry or forwarding hit takes to deliver data.
const FORWARD_LATENCY: u64 = 2;

/// Commit inactivity threshold for the deadlock watchdog.
const WATCHDOG_CYCLES: u64 = 200_000;

struct Engine<'c> {
    cfg: &'c MachineConfig,
    now: u64,
    mem: PagedMemory,
    hier: MemoryHierarchy,
    dir: CombinedPredictor,
    btb: Btb,
    ras: Ras,
    storewait: StoreWaitTable,
    rename: RenameMap,
    rf_int: RegFile,
    rf_fp: RegFile,
    iq_int: IssueQueue,
    iq_fp: IssueQueue,
    lsq: LoadStoreQueue,
    rob: ActiveList,
    fu: FuPool,
    wib: Option<Window>,
    /// Runahead backend: `Some` while a pre-execution episode is in
    /// flight (see [`crate::runahead`]).
    ra: Option<RunaheadState>,
    /// Runahead: two-level register-file L2 reads accumulated before
    /// episode exits rebuilt the register files (their counters restart;
    /// the end-of-run total adds this back).
    ra_lost_l2_reads: u64,
    /// Delay-tracking backend's parking structure (`Some` iff
    /// `backend = delay_track`; see [`crate::delay`]).
    delayq: Option<DelayQueue>,
    /// Delay-tracking: predicted absolute data-ready cycle per physical
    /// register (0 = no prediction). Sized only for the delay backend.
    delay_hint_int: Vec<u64>,
    delay_hint_fp: Vec<u64>,
    events: BinaryHeap<Reverse<Scheduled>>,
    event_order: u64,
    fetch_pc: u32,
    fetch_resume_at: u64,
    fetch_halted: bool,
    ifq: VecDeque<Fetched>,
    pending_load_values: HashMap<Seq, u64>,
    /// Loads blocked on a partially overlapping older store: retried when
    /// that store commits.
    blocked_loads: Vec<(Seq, Seq)>,
    halted: bool,
    stats: SimStats,
    checker: Option<Interpreter>,
    trace: Option<Trace>,
    /// Optional pipeline event stream (observability layer).
    sink: Option<&'c mut dyn EventSink>,
    /// CPI-stack bookkeeping: the resource that blocked dispatch this
    /// cycle, the cycle branch-recovery redirect ends, and the commit
    /// count at the last interval-sample boundary.
    dispatch_block: Option<CpiCategory>,
    recovery_until: u64,
    interval_committed_mark: u64,
    last_commit_cycle: u64,
    /// `WIB_TRACE` was set at construction. Hoisted so the cycle loop
    /// never touches the environment (an `env::var` per cycle locks and
    /// allocates).
    debug_trace: bool,
    /// Run the machine-check invariants every cycle (see [`crate::check`]).
    /// Forced on by the `checked` cargo feature.
    machine_check: bool,
    /// Quiescent-cycle fast-forward disabled: simulate every cycle.
    no_skip: bool,
    /// Cooperative stop request, polled at stats-epoch boundaries only.
    cancel: Option<CancelToken>,
    /// Set once the token is observed tripped; the run unwinds cleanly.
    cancelled: bool,
    /// Sampled per-stage wall-clock attribution (see [`crate::profile`]).
    profile: StageProfile,
    /// Reusable per-cycle scratch buffers (taken with `mem::take`, used,
    /// cleared and put back) so the steady-state cycle loop performs no
    /// heap allocation. The three wakeup buffers are distinct because the
    /// deepest synchronous chain nests them: `writeback` →
    /// `complete_store_data` → `retry_loads_blocked_on` →
    /// `try_load_data` → `divert_chain_to_wib` → `wake_as_wait`.
    scratch_candidates: Vec<Seq>,
    scratch_woken_wb: Vec<Seq>,
    scratch_woken_wait: Vec<Seq>,
    scratch_unblocked: Vec<Seq>,
    scratch_undo: Vec<RobEntry>,
    scratch_cols: Vec<(crate::types::ColumnId, Seq)>,
}

/// Register-file timing model for `cfg` (shared between engine
/// construction and the runahead episode-exit rebuild).
fn rf_timing(cfg: &MachineConfig) -> RegTiming {
    match cfg.regfile {
        RegFileConfig::SingleLevel => RegTiming::Flat,
        RegFileConfig::TwoLevel {
            l1_regs,
            l2_latency,
            ..
        } => RegTiming::TwoLevel {
            l1_regs: l1_regs as usize,
            l2_latency,
        },
        RegFileConfig::MultiBanked {
            banks,
            ports_per_bank,
            conflict_penalty,
        } => RegTiming::Banked {
            banks: banks as usize,
            ports: ports_per_bank,
            conflict_penalty,
        },
    }
}

/// One profiling lap: charge the time since the previous lap to `slot`
/// and restart the clock. A no-op on unprofiled cycles (`at` is `None`).
#[inline]
fn profile_lap(at: &mut Option<std::time::Instant>, slot: &mut u64) {
    if let Some(t) = at {
        let now = std::time::Instant::now();
        *slot += now.duration_since(*t).as_nanos() as u64;
        *t = now;
    }
}

impl<'c> Engine<'c> {
    fn new(cfg: &'c MachineConfig, program: &Program, cosim: bool) -> Engine<'c> {
        let mut mem = PagedMemory::new();
        program.load_into(&mut mem);
        let rf_timing = rf_timing(cfg);
        let delayq = matches!(cfg.backend, Backend::DelayTrack { .. })
            .then(|| DelayQueue::new(cfg.active_list as usize));
        let delay_hints = if delayq.is_some() {
            vec![0u64; cfg.regs_per_class as usize]
        } else {
            Vec::new()
        };
        let wib = cfg.wib.as_ref().map(|w| {
            Window::new(
                cfg.active_list as usize,
                w.organization,
                w.policy,
                w.max_bit_vectors as usize,
            )
        });
        Engine {
            cfg,
            now: 0,
            mem,
            hier: MemoryHierarchy::new(cfg.mem.clone()),
            dir: CombinedPredictor::new(cfg.dir.clone()),
            btb: Btb::new(cfg.btb),
            ras: Ras::new(cfg.ras_entries as usize),
            storewait: StoreWaitTable::isca2002(),
            rename: RenameMap::new(),
            rf_int: RegFile::new(cfg.regs_per_class as usize, 32, rf_timing),
            rf_fp: RegFile::new(cfg.regs_per_class as usize, 32, rf_timing),
            iq_int: IssueQueue::new(cfg.iq_int_size as usize),
            iq_fp: IssueQueue::new(cfg.iq_fp_size as usize),
            lsq: LoadStoreQueue::new(cfg.load_queue as usize, cfg.store_queue as usize),
            rob: ActiveList::new(cfg.active_list as usize),
            fu: FuPool::new(cfg.fu.clone()),
            wib,
            ra: None,
            ra_lost_l2_reads: 0,
            delayq,
            delay_hint_int: delay_hints.clone(),
            delay_hint_fp: delay_hints,
            events: BinaryHeap::with_capacity(256),
            event_order: 0,
            fetch_pc: program.entry,
            fetch_resume_at: 0,
            fetch_halted: false,
            ifq: VecDeque::new(),
            pending_load_values: HashMap::new(),
            blocked_loads: Vec::new(),
            halted: false,
            stats: SimStats {
                interval_epoch: cfg.stats_epoch,
                backend: match cfg.backend {
                    Backend::Runahead { .. } => "runahead".to_string(),
                    Backend::DelayTrack { .. } => "delay_track".to_string(),
                    Backend::Base | Backend::Wib => String::new(),
                },
                ..SimStats::default()
            },
            checker: cosim.then(|| Interpreter::new(program)),
            trace: None,
            sink: None,
            dispatch_block: None,
            recovery_until: 0,
            interval_committed_mark: 0,
            last_commit_cycle: 0,
            debug_trace: std::env::var("WIB_TRACE").is_ok(),
            machine_check: false,
            no_skip: false,
            cancel: None,
            cancelled: false,
            profile: StageProfile::default(),
            scratch_candidates: Vec::with_capacity(64),
            scratch_woken_wb: Vec::with_capacity(32),
            scratch_woken_wait: Vec::with_capacity(32),
            scratch_unblocked: Vec::with_capacity(16),
            scratch_undo: Vec::with_capacity(cfg.active_list as usize),
            scratch_cols: Vec::with_capacity(16),
        }
    }

    /// Report a pipeline event to the attached sink, if any.
    #[inline]
    fn emit(&mut self, ev: PipeEvent) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit(self.now, &ev);
        }
    }

    /// The WIB bank an active-list slot maps to (0 for non-banked
    /// organizations; mirrors the `slot % banks` mapping in `wib.rs`).
    fn wib_bank(&self, slot: usize) -> u32 {
        match self.cfg.wib.as_ref().map(|w| w.organization) {
            Some(WibOrganization::Banked { banks }) => (slot % banks as usize) as u32,
            _ => 0,
        }
    }

    /// Fast-forward on the interpreter, warming caches/TLBs, then seed the
    /// detailed machine from the resulting architectural state.
    fn warm_up(&mut self, instructions: u64) {
        let snapshot = Program {
            code_base: 0,
            code: Vec::new(),
            data: Vec::new(),
            entry: self.fetch_pc,
        };
        let mut interp = match self.checker.take() {
            Some(i) => i,
            None => {
                // Build a throwaway interpreter over a copy of memory.
                let mut i = Interpreter::new(&snapshot);
                *i.memory_mut() = self.mem.clone();
                i
            }
        };
        for done in 0..instructions {
            if interp.is_halted() {
                break;
            }
            // Same spirit as the epoch poll in the cycle loop: warm-up can
            // dominate a job's wall clock, so it honors the token too, at a
            // granularity that keeps the interpreter loop branch-predictable.
            if done % 4096 == 0 && self.cancel.as_ref().is_some_and(CancelToken::should_stop) {
                self.cancelled = true;
                break;
            }
            let info = interp.step().expect("warm-up hit an invalid instruction");
            self.hier.warm_inst(info.pc);
            if let Some(m) = info.mem {
                let kind = if m.is_store {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                self.hier.warm_data(m.addr, kind);
            }
        }
        self.hier.reset_stats();
        // Seed architectural state.
        self.mem = interp.memory().clone();
        self.fetch_pc = interp.pc();
        for flat in 0..NUM_ARCH_REGS as u8 {
            let r = ArchReg::from_flat(flat);
            let p = self.rename.lookup(r);
            let bits = interp.reg_bits(r);
            match r.class() {
                RegClass::Int => self.rf_int.poke(p, bits),
                RegClass::Fp => self.rf_fp.poke(p, bits),
            }
        }
        if self.checker.is_some() || interp.retired() > 0 {
            self.checker = self.checker.take().or(Some(interp.clone()));
        }
        // If cosim was enabled, keep the advanced interpreter as checker.
        if self.checker.is_some() {
            self.checker = Some(interp);
        }
    }

    fn rf(&self, class: RegClass) -> &RegFile {
        match class {
            RegClass::Int => &self.rf_int,
            RegClass::Fp => &self.rf_fp,
        }
    }

    fn rf_mut(&mut self, class: RegClass) -> &mut RegFile {
        match class {
            RegClass::Int => &mut self.rf_int,
            RegClass::Fp => &mut self.rf_fp,
        }
    }

    fn iq_for(&mut self, inst: &Inst) -> &mut IssueQueue {
        if inst.is_fp_queue() {
            &mut self.iq_fp
        } else {
            &mut self.iq_int
        }
    }

    fn iq_for_ref(&self, inst: &Inst) -> &IssueQueue {
        if inst.is_fp_queue() {
            &self.iq_fp
        } else {
            &self.iq_int
        }
    }

    /// Instructions parked outside the issue queues: in the WIB or the
    /// delay queue (at most one exists per configuration).
    fn parked_resident(&self) -> usize {
        self.wib.as_ref().map_or(0, Window::resident)
            + self.delayq.as_ref().map_or(0, DelayQueue::resident)
    }

    fn schedule(&mut self, at: u64, ev: Event) {
        debug_assert!(at > self.now);
        self.event_order += 1;
        self.events.push(Reverse(Scheduled {
            at,
            order: self.event_order,
            ev,
        }));
    }

    /// Raw bits of a source operand (0 for absent operands).
    fn src_value(&self, src: Option<SrcRef>) -> u64 {
        match src {
            Some(s) => self.rf(s.class).value(s.preg),
            None => 0,
        }
    }

    /// Needs an issue-queue entry at dispatch? `nop`, `halt` and direct
    /// jumps complete in the front end.
    fn needs_iq(inst: &Inst) -> bool {
        use wib_isa::inst::Opcode::*;
        !matches!(inst.op, Nop | Halt | J | Jal)
    }

    /// The operands the issue queue tracks for wakeup. Stores issue on
    /// their base register alone (address generation is decoupled from
    /// the data operand, as on the 21264).
    fn tracked_srcs(inst: &Inst, srcs: &[Option<SrcRef>; 2]) -> [Option<SrcRef>; 2] {
        if inst.is_store() {
            [srcs[0], None]
        } else {
            *srcs
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn do_fetch(&mut self) {
        if self.fetch_halted || self.now < self.fetch_resume_at {
            return;
        }
        if self.ifq.len() >= self.cfg.ifq_size as usize {
            return;
        }
        // One I-cache access per fetch group; a miss stalls fetch until
        // the line arrives.
        let hit_latency = self.cfg.mem.l1i.hit_latency;
        let ready = self.hier.inst_fetch(self.fetch_pc, self.now);
        if ready > self.now + hit_latency {
            self.fetch_resume_at = ready;
            return;
        }
        let dispatch_at = self.now + self.cfg.front_end_delay;
        for _ in 0..self.cfg.fetch_width {
            if self.ifq.len() >= self.cfg.ifq_size as usize {
                break;
            }
            let pc = self.fetch_pc;
            let word = self.mem.read_u32(pc);
            // Wrong-path fetches can land in data; treat undecodable words
            // as nops (they are squashed before commit on a correct run).
            let inst = Inst::decode(word).unwrap_or(Inst::NOP);
            self.stats.fetched += 1;
            self.emit(PipeEvent::Fetch { pc });
            let hist_before = self.dir.history();
            let ras_before = self.ras.checkpoint();
            let mut branch = None;
            let mut next_pc = pc.wrapping_add(4);
            let mut bubble = 0u64;
            let mut stop = false;

            if inst.is_cond_branch() {
                self.stats.dir_lookups += 1;
                let pr = self.dir.predict(pc);
                let mut pred_next = pc.wrapping_add(4);
                if pr.taken {
                    let target = exec::control_target(&inst, pc, 0);
                    if self.btb.lookup(pc).is_none() {
                        bubble = self.cfg.btb_miss_penalty_direct;
                    }
                    self.btb.update(pc, target);
                    pred_next = target;
                    stop = true;
                }
                branch = Some(BranchInfo {
                    pred_taken: pr.taken,
                    pred_next,
                    dir_ckpt: Some(pr.ckpt),
                    ras_after: self.ras.checkpoint(),
                });
                next_pc = pred_next;
            } else if inst.is_jump_direct() {
                let target = exec::control_target(&inst, pc, 0);
                if self.btb.lookup(pc).is_none() {
                    bubble = self.cfg.btb_miss_penalty_direct;
                }
                self.btb.update(pc, target);
                if inst.is_call() {
                    self.ras.push(pc.wrapping_add(4));
                }
                branch = Some(BranchInfo {
                    pred_taken: true,
                    pred_next: target,
                    dir_ckpt: None,
                    ras_after: self.ras.checkpoint(),
                });
                next_pc = target;
                stop = true;
            } else if inst.is_jump_indirect() {
                let target = if inst.is_return() {
                    self.ras.pop()
                } else {
                    match self.btb.lookup(pc) {
                        Some(t) => t,
                        None => {
                            bubble = self.cfg.btb_miss_penalty_other;
                            pc.wrapping_add(4) // will almost surely mispredict
                        }
                    }
                };
                if inst.is_call() {
                    self.ras.push(pc.wrapping_add(4));
                }
                branch = Some(BranchInfo {
                    pred_taken: true,
                    pred_next: target,
                    dir_ckpt: None,
                    ras_after: self.ras.checkpoint(),
                });
                next_pc = target;
                stop = true;
            }

            self.ifq.push_back(Fetched {
                pc,
                inst,
                ready_at: dispatch_at,
                fetched_at: self.now,
                branch,
                hist_before,
                ras_before,
            });
            self.fetch_pc = next_pc;
            if inst.is_halt() {
                self.fetch_halted = true;
                break;
            }
            if stop {
                if bubble > 0 {
                    self.fetch_resume_at = self.now + 1 + bubble;
                }
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Dispatch (WIB reinsertion has priority for the shared bandwidth)
    // ------------------------------------------------------------------

    fn evaluate_srcs(
        &mut self,
        seq: Seq,
        srcs: &[Option<SrcRef>; 2],
    ) -> [Option<(SrcRef, SrcStatus)>; 2] {
        let mut out = [None, None];
        for (slot, src) in srcs.iter().enumerate() {
            let Some(s) = *src else { continue };
            let status = if self.rf(s.class).is_ready(s.preg) {
                SrcStatus::Ready
            } else if self.rf(s.class).wait_column(s.preg).is_some() {
                SrcStatus::Wait
            } else {
                self.rf_mut(s.class).subscribe(s.preg, seq);
                SrcStatus::Pending
            };
            out[slot] = Some((s, status));
        }
        out
    }

    /// Reinsert a WIB instruction into its issue queue; false if full.
    fn try_reinsert(&mut self, seq: Seq) -> bool {
        let Some(e) = self.rob.get(seq) else {
            debug_assert!(false, "WIB held a dead instruction");
            return false;
        };
        let inst = e.inst;
        let srcs = e.srcs;
        let dest = e.dest;
        let overflow = self.iq_for(&inst).free_slots() == 0;
        if overflow && self.rob.head().map(|h| h.seq) != Some(seq) {
            return false;
        }
        let tracked = Engine::tracked_srcs(&inst, &srcs);
        let entry = IqEntry::new(self.evaluate_srcs(seq, &tracked));
        if overflow {
            // Forward-progress guarantee: the oldest in-flight instruction
            // may always reenter — its elders have committed, so its
            // operands are ready and it issues immediately.
            self.iq_for(&inst).insert_overflow(seq, entry);
        } else {
            self.iq_for(&inst).insert(seq, entry);
        }
        if let Some((arch, p, _)) = dest {
            // The destination no longer hangs off a column; consumers that
            // latched `Wait` re-pend via select-time validation.
            self.rf_mut(arch.class()).clear_wait(p);
        }
        let e = self.rob.get_mut(seq).expect("checked above");
        e.in_wib = false;
        let slot = e.slot;
        self.stats.wib_extractions += 1;
        self.emit(PipeEvent::WibExtract {
            seq,
            bank: self.wib_bank(slot),
        });
        true
    }

    /// Reinsert a delay-parked instruction into its issue queue; false if
    /// full. Mirrors [`Engine::try_reinsert`] (the issue queue's overflow
    /// slot is reserved for the window head) but with no wait bits to
    /// clear — delay tracking never sets them.
    fn try_reinsert_delayed(&mut self, seq: Seq) -> bool {
        let Some(e) = self.rob.get(seq) else {
            debug_assert!(false, "delay queue held a dead instruction");
            return false;
        };
        let inst = e.inst;
        let srcs = e.srcs;
        let overflow = self.iq_for(&inst).free_slots() == 0;
        if overflow && self.rob.head().map(|h| h.seq) != Some(seq) {
            return false;
        }
        let tracked = Engine::tracked_srcs(&inst, &srcs);
        let entry = IqEntry::new(self.evaluate_srcs(seq, &tracked));
        if overflow {
            self.iq_for(&inst).insert_overflow(seq, entry);
        } else {
            self.iq_for(&inst).insert(seq, entry);
        }
        self.rob.get_mut(seq).expect("checked above").in_wib = false;
        self.stats.delay_reinserted += 1;
        true
    }

    /// Reinsert due delay-parked instructions: a due window head first
    /// (it may claim the overflow slot so commit always makes progress),
    /// then the regular wake-order extraction. Returns the dispatch
    /// bandwidth consumed.
    fn do_delay_reinsert(&mut self, mut budget: usize) -> usize {
        let mut used = 0;
        let head_parked = self
            .rob
            .head()
            .filter(|h| h.in_wib)
            .map(|h| (h.seq, h.slot));
        if let Some((hseq, hslot)) = head_parked {
            let due = self
                .delayq
                .as_ref()
                .is_some_and(|dq| dq.due_slot(hslot, self.now));
            if due && budget > 0 && self.try_reinsert_delayed(hseq) {
                self.delayq
                    .as_mut()
                    .expect("checked above")
                    .take_slot(hslot);
                budget -= 1;
                used += 1;
            }
        }
        if budget > 0 {
            if let Some(mut dq) = self.delayq.take() {
                used += dq.extract(self.now, budget, |seq, _slot| {
                    self.try_reinsert_delayed(seq)
                });
                self.delayq = Some(dq);
            }
        }
        used
    }

    // ------------------------------------------------------------------
    // Delay-tracking backend (see `crate::delay`)
    // ------------------------------------------------------------------

    /// Predicted absolute data-ready cycle for `(class, p)`; 0 = none.
    fn delay_hint(&self, class: RegClass, p: PhysReg) -> u64 {
        match class {
            RegClass::Int => self.delay_hint_int[p.0 as usize],
            RegClass::Fp => self.delay_hint_fp[p.0 as usize],
        }
    }

    fn set_delay_hint_raw(&mut self, class: RegClass, p: PhysReg, at: u64) {
        let plane = match class {
            RegClass::Int => &mut self.delay_hint_int,
            RegClass::Fp => &mut self.delay_hint_fp,
        };
        plane[p.0 as usize] = at;
    }

    /// Issue-to-writeback latency for `inst` once its operands are ready:
    /// one register-read cycle, one wakeup/select cycle, then the
    /// functional-unit (or L1D-hit) latency. The delay-chain stamp a
    /// parked consumer hands its own dependents.
    fn delay_estimate(&self, inst: &Inst) -> u64 {
        use wib_isa::inst::FuKind;
        let fu = &self.cfg.fu;
        2 + match inst.fu_kind() {
            FuKind::IntAlu => 1,
            FuKind::IntMul => fu.int_mul_latency,
            FuKind::FpAdd => fu.fp_add_latency,
            FuKind::FpMul => fu.fp_mul_latency,
            FuKind::FpDiv => fu.fp_div_latency,
            FuKind::FpSqrt => fu.fp_sqrt_latency,
            FuKind::Mem => 1 + self.cfg.mem.l1d.hit_latency,
        }
    }

    /// A load's data-arrival cycle became known. If the remaining latency
    /// exceeds the parking threshold, stamp the destination and park the
    /// waiting dependence chain in the delay queue.
    fn delay_note_arrival(&mut self, seq: Seq, arrive: u64) {
        let Backend::DelayTrack { park_threshold } = self.cfg.backend else {
            return;
        };
        if arrive.saturating_sub(self.now) <= park_threshold {
            return;
        }
        let Some((arch, p, _)) = self.rob.get(seq).and_then(|e| e.dest) else {
            return;
        };
        self.propagate_delay(arch.class(), p, arrive);
    }

    /// Stamp `(class, p)` with predicted-ready cycle `at` and cascade:
    /// subscribers whose operands all carry predictions park in the delay
    /// queue and stamp their own destinations one estimate later.
    fn propagate_delay(&mut self, class: RegClass, p: PhysReg, at: u64) {
        let mut work = vec![(class, p, at)];
        let mut woken = Vec::new();
        while let Some((class, p, at)) = work.pop() {
            if self.rf(class).is_ready(p) {
                continue; // raced with the writeback; nothing to predict
            }
            self.set_delay_hint_raw(class, p, at);
            woken.clear();
            self.rf_mut(class).take_waiters_into(p, &mut woken);
            for i in 0..woken.len() {
                if let Some(next) = self.try_park(woken[i], class, p) {
                    work.push(next);
                }
            }
        }
    }

    /// Try to park subscriber `seq` of `(class, p)`. Non-parkable
    /// subscribers (already issued, store-data waiters, operands without
    /// predictions, predictions already due) are re-subscribed so the real
    /// writeback still reaches them. Returns the parked instruction's
    /// destination stamp for cascading.
    fn try_park(
        &mut self,
        seq: Seq,
        class: RegClass,
        p: PhysReg,
    ) -> Option<(RegClass, PhysReg, u64)> {
        let Some(e) = self.rob.get(seq) else {
            return None; // squashed since subscribing
        };
        if e.completed || e.in_wib {
            return None;
        }
        let inst = e.inst;
        let slot = e.slot;
        let dest = e.dest;
        let srcs = Engine::tracked_srcs(&inst, &e.srcs);
        if e.issued || !Engine::needs_iq(&inst) || !self.iq_for_ref(&inst).contains(seq) {
            // A store waiting for its data operand, or an issued load whose
            // producer re-subscribed it: needs the value, not a prediction.
            self.rf_mut(class).subscribe(p, seq);
            return None;
        }
        let mut wake = 0u64;
        for s in srcs.iter().flatten() {
            if self.rf(s.class).is_ready(s.preg) {
                continue;
            }
            let hint = self.delay_hint(s.class, s.preg);
            if hint == 0 {
                // An operand with no prediction: cannot park safely.
                self.rf_mut(class).subscribe(p, seq);
                return None;
            }
            wake = wake.max(hint);
        }
        if wake <= self.now {
            self.rf_mut(class).subscribe(p, seq);
            return None;
        }
        self.iq_for(&inst).remove(seq);
        {
            let e = self.rob.get_mut(seq).expect("live");
            e.in_wib = true; // "parked outside the issue queue"
            e.wib_trips += 1;
        }
        self.delayq
            .as_mut()
            .expect("delay backend")
            .insert(slot, seq, wake);
        self.stats.delay_parked += 1;
        dest.map(|(arch, dp, _)| (arch.class(), dp, wake + self.delay_estimate(&inst)))
    }

    /// Would dispatching `inst` (the IFQ front) stall, and on which full
    /// resource? `None` means dispatch can proceed. Shared between
    /// [`Engine::do_dispatch`] and the quiescence check in
    /// [`Engine::try_skip`] so the two can never disagree on what blocks a
    /// cycle.
    fn dispatch_stall_category(&self, inst: &Inst) -> Option<CpiCategory> {
        if self.rob.free_slots() == 0 {
            return Some(CpiCategory::ActiveListFull);
        }
        // While instructions are parked outside the issue queues (WIB or
        // delay queue), hold one issue queue slot in reserve for
        // reinsertion: if newly fetched instructions (necessarily
        // younger, possibly dependent on the parked chain) could fill the
        // queue completely, the oldest parked instruction might never get
        // back in.
        let reserve = if self.parked_resident() > 0 { 1 } else { 0 };
        if Engine::needs_iq(inst) && self.iq_for_ref(inst).free_slots() <= reserve {
            return Some(CpiCategory::IqFull);
        }
        if (inst.is_load() && self.lsq.lq_free() == 0)
            || (inst.is_store() && self.lsq.sq_free() == 0)
        {
            return Some(CpiCategory::LsqFull);
        }
        if let Some(d) = inst.dest() {
            if self.rf(d.class()).free_count() == 0 {
                return Some(CpiCategory::RegsFull);
            }
        }
        None
    }

    /// Charge `n` cycles of dispatch stall to `cat`'s counter and record
    /// it as this cycle's block for CPI attribution.
    fn charge_dispatch_stall(&mut self, cat: CpiCategory, n: u64) {
        let counter = match cat {
            CpiCategory::ActiveListFull => &mut self.stats.stall_active_list,
            CpiCategory::IqFull => &mut self.stats.stall_issue_queue,
            CpiCategory::LsqFull => &mut self.stats.stall_lsq,
            CpiCategory::RegsFull => &mut self.stats.stall_regs,
            _ => unreachable!("dispatch only stalls on resource categories"),
        };
        *counter += n;
        self.dispatch_block = Some(cat);
    }

    fn do_dispatch(&mut self) {
        let mut budget = self.cfg.decode_width as usize;
        // Forward-progress guarantee: a parked, eligible ROB head is
        // reinserted first, ahead of the regular extraction order (it may
        // use the issue queue's overflow slot — see `try_reinsert`).
        let head_parked = self
            .rob
            .head()
            .filter(|h| h.in_wib)
            .map(|h| (h.seq, h.slot));
        if let Some((hseq, hslot)) = head_parked {
            if let Some(mut wib) = self.wib.take() {
                if wib.eligible_slot(hslot) && self.try_reinsert(hseq) {
                    wib.take_slot(hslot);
                    budget -= 1;
                }
                self.wib = Some(wib);
            }
        }
        // WIB reinsertion next (paper: dispatch logic gives reinserted
        // instructions priority over newly fetched ones).
        if let Some(mut wib) = self.wib.take() {
            let n = wib.extract(self.now, budget, |seq, _slot| self.try_reinsert(seq));
            self.wib = Some(wib);
            budget -= n;
        }
        // Delay-queue reinsertion shares dispatch bandwidth the same way.
        if self.delayq.is_some() && budget > 0 {
            budget -= self.do_delay_reinsert(budget);
        }

        while budget > 0 {
            let Some(front) = self.ifq.front() else { break };
            if front.ready_at > self.now {
                break;
            }
            let inst = front.inst;
            if let Some(cat) = self.dispatch_stall_category(&inst) {
                self.charge_dispatch_stall(cat, 1);
                break;
            }

            let f = self.ifq.pop_front().expect("peeked above");
            let seq = self.rob.next_seq();
            let slot = self.rob.next_slot();
            let [s1, s2] = f.inst.sources();
            let to_ref = |r: Option<ArchReg>, this: &Engine| {
                r.map(|r| SrcRef {
                    class: r.class(),
                    preg: this.rename.lookup(r),
                })
            };
            let srcs = [to_ref(s1, self), to_ref(s2, self)];
            let dest = f.inst.dest().map(|arch| {
                let p = self
                    .rf_mut(arch.class())
                    .alloc()
                    .expect("checked free_count");
                let prev = self.rename.rename(arch, p);
                (arch, p, prev)
            });
            // A freshly allocated register carries no stale prediction or
            // poison from its previous life.
            if let Some((arch, p, _)) = dest {
                if self.delayq.is_some() {
                    self.set_delay_hint_raw(arch.class(), p, 0);
                }
                if let Some(ra) = self.ra.as_mut() {
                    ra.poison.set(arch.class(), p, false);
                }
            }
            let mut entry = RobEntry {
                seq,
                slot,
                pc: f.pc,
                inst: f.inst,
                srcs,
                dest,
                completed: false,
                issued: false,
                in_wib: false,
                wib_trips: 0,
                miss_column: None,
                miss_kind: None,
                data_ready_at: 0,
                in_lq: f.inst.is_load(),
                in_sq: f.inst.is_store(),
                dir_wrong: false,
                branch: f.branch,
                cycle_fetch: f.fetched_at,
                cycle_dispatch: self.now,
                cycle_issue: 0,
                cycle_complete: 0,
                hist_before: f.hist_before,
                ras_before: f.ras_before,
            };
            if f.inst.is_load() {
                self.lsq.push_load(seq, f.inst.mem_width());
            } else if f.inst.is_store() {
                self.lsq.push_store(seq, f.inst.mem_width());
            }
            if Engine::needs_iq(&f.inst) {
                let tracked = Engine::tracked_srcs(&f.inst, &srcs);
                let iq_entry = IqEntry::new(self.evaluate_srcs(seq, &tracked));
                self.iq_for(&f.inst).insert(seq, iq_entry);
            } else {
                // nop/halt/j complete in the front end; jal also links.
                entry.completed = true;
                entry.cycle_complete = self.now;
                if let Some((arch, p, _)) = entry.dest {
                    let link = exec::alu_result(&f.inst, 0, 0, f.pc).expect("jal links");
                    self.writeback(arch.class(), p, link);
                }
            }
            let front_end_complete = entry.completed;
            self.rob.push(entry);
            self.stats.dispatched += 1;
            self.emit(PipeEvent::Dispatch {
                seq,
                pc: f.pc,
                inst: f.inst,
            });
            if front_end_complete {
                self.emit(PipeEvent::Complete { seq });
            }
            budget -= 1;
        }
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    /// Broadcast a produced value: mark ready and wake subscribed
    /// consumers in both issue queues. Consumers that are not issue-queue
    /// entries are stores waiting for their data operand (agen done, data
    /// outstanding).
    fn writeback(&mut self, class: RegClass, p: PhysReg, value: u64) {
        if self.delayq.is_some() {
            // The value is real now; any outstanding prediction is dead.
            self.set_delay_hint_raw(class, p, 0);
        }
        let mut woken = std::mem::take(&mut self.scratch_woken_wb);
        debug_assert!(woken.is_empty());
        self.rf_mut(class).write_into(p, value, &mut woken);
        for &seq in &woken {
            if self.iq_int.satisfy(seq, p, class, SrcStatus::Ready)
                || self.iq_fp.satisfy(seq, p, class, SrcStatus::Ready)
            {
                continue;
            }
            self.complete_store_data(seq, p, class, value);
        }
        woken.clear();
        self.scratch_woken_wb = woken;
    }

    /// A store subscribed for its data operand: capture the value and
    /// mark the store complete.
    fn complete_store_data(&mut self, seq: Seq, p: PhysReg, class: RegClass, value: u64) {
        let Some(e) = self.rob.get(seq) else { return };
        if !e.inst.is_store() || e.completed {
            return;
        }
        if !e.srcs[1].is_some_and(|s| s.preg == p && s.class == class) {
            return;
        }
        self.lsq.set_store_data(seq, value);
        if let Some(ra) = self.ra.as_mut() {
            if ra.poison.get(class, p) {
                ra.poisoned_stores.insert(seq);
            }
        }
        {
            let e = self.rob.get_mut(seq).expect("live");
            e.completed = true;
            e.cycle_complete = self.now;
        }
        self.emit(PipeEvent::Complete { seq });
        // Loads that found this store's data missing can retry.
        self.retry_loads_blocked_on(seq);
    }

    /// Retry loads that were blocked on store `store_seq` (its data
    /// arrived or it committed).
    fn retry_loads_blocked_on(&mut self, store_seq: Seq) {
        let mut unblocked = std::mem::take(&mut self.scratch_unblocked);
        debug_assert!(unblocked.is_empty());
        {
            let unblocked = &mut unblocked;
            self.blocked_loads.retain(|&(l, s)| {
                if s == store_seq {
                    unblocked.push(l);
                    false
                } else {
                    true
                }
            });
        }
        for &load_seq in &unblocked {
            let Some(le) = self.rob.get(load_seq) else {
                continue;
            };
            let width = le.inst.mem_width();
            let addr = self
                .lsq
                .loads()
                .find(|l| l.seq == load_seq)
                .and_then(|l| l.addr)
                .expect("blocked load has an address");
            self.try_load_data(load_seq, addr, width);
        }
        unblocked.clear();
        self.scratch_unblocked = unblocked;
    }

    /// Deliver pretend-ready wakeups for `woken` subscribers of `(class,
    /// p)`; non-issue-queue subscribers (store-data waiters) are
    /// re-subscribed — they need the real value, not the wait bit.
    fn wake_as_wait(&mut self, woken: &[Seq], p: PhysReg, class: RegClass) {
        for &c in woken {
            if self.iq_int.satisfy(c, p, class, SrcStatus::Wait)
                || self.iq_fp.satisfy(c, p, class, SrcStatus::Wait)
            {
                continue;
            }
            if self.rob.get(c).is_some() {
                self.rf_mut(class).subscribe(p, c);
            }
        }
    }

    /// Set the wait bit on `(class, p)` and deliver the pretend-ready
    /// wakeups through the reusable wait-wakeup scratch buffer.
    fn set_wait_and_wake(&mut self, class: RegClass, p: PhysReg, column: crate::types::ColumnId) {
        let mut woken = std::mem::take(&mut self.scratch_woken_wait);
        debug_assert!(woken.is_empty());
        self.rf_mut(class).set_wait_into(p, column, &mut woken);
        self.wake_as_wait(&woken, p, class);
        woken.clear();
        self.scratch_woken_wait = woken;
    }

    /// Move a pretend-ready instruction from its issue queue to the WIB.
    /// Returns false when the buffer refused it (pool-of-blocks
    /// exhaustion): the instruction stays in its issue queue and the
    /// issue slot is wasted, as the paper's section 3.5 anticipates.
    fn move_to_wib(&mut self, seq: Seq, column: crate::types::ColumnId) -> bool {
        let e = self.rob.get(seq).expect("live instruction");
        let slot = e.slot;
        let inst = e.inst;
        let dest = e.dest;
        if !self
            .wib
            .as_mut()
            .expect("WIB configured")
            .insert(slot, seq, column)
        {
            return false;
        }
        let e = self.rob.get_mut(seq).expect("live instruction");
        e.in_wib = true;
        e.wib_trips += 1;
        self.iq_for(&inst).remove(seq);
        self.stats.wib_insertions += 1;
        self.emit(PipeEvent::WibInsert {
            seq,
            bank: self.wib_bank(slot),
        });
        if let Some((arch, p, _)) = dest {
            self.set_wait_and_wake(arch.class(), p, column);
        }
        true
    }

    fn do_issue(&mut self) {
        self.fu.begin_cycle();
        self.rf_int.begin_cycle();
        self.rf_fp.begin_cycle();
        let l2_ports = match self.cfg.regfile {
            RegFileConfig::TwoLevel { l2_read_ports, .. } => l2_read_ports as usize,
            _ => usize::MAX,
        };
        let mut l2_reads = [0usize; 2]; // per class
        for fp_queue in [false, true] {
            let width = if fp_queue {
                self.cfg.issue_width_fp
            } else {
                self.cfg.issue_width_int
            } as usize;
            let mut budget = width;
            // Snapshot the ready set into the reusable candidate buffer:
            // wakeups fired while issuing (e.g. a WIB insertion setting a
            // wait bit) must not make *new* entries selectable this cycle.
            let mut candidates = std::mem::take(&mut self.scratch_candidates);
            debug_assert!(candidates.is_empty());
            {
                let iq = if fp_queue { &self.iq_fp } else { &self.iq_int };
                candidates.extend(iq.ready_seqs().take(64));
            }
            for &seq in &candidates {
                if budget == 0 {
                    break;
                }
                let Some(e) = self.rob.get(seq) else {
                    // Should have been removed at squash.
                    debug_assert!(false, "dead instruction in issue queue");
                    continue;
                };
                let inst = e.inst;
                let pc = e.pc;
                // Validate the *tracked* operands (stores issue on their
                // base register alone) against the register files.
                let srcs = Engine::tracked_srcs(&inst, &e.srcs);
                let mut wait_col = None;
                let mut invalid = false;
                for s in srcs.iter().flatten() {
                    if self.rf(s.class).is_ready(s.preg) {
                        continue;
                    }
                    match self.rf(s.class).wait_column(s.preg) {
                        Some(col) => {
                            if wait_col.is_none() {
                                // Fixed operand ordering picks the first
                                // waiting operand's load (paper 3.3).
                                wait_col = Some(col);
                            }
                        }
                        None => {
                            // Producer was reinserted from the WIB but has
                            // not executed: go back to pending.
                            let iq = if fp_queue {
                                &mut self.iq_fp
                            } else {
                                &mut self.iq_int
                            };
                            iq.demote(seq, s.preg, s.class);
                            self.rf_mut(s.class).subscribe(s.preg, seq);
                            invalid = true;
                        }
                    }
                }
                if invalid {
                    continue;
                }
                if let Some(col) = wait_col {
                    if self.wib.is_some() {
                        // Pretend-ready: consumes an issue slot, then parks
                        // in the WIB instead of a functional unit.
                        if !self.move_to_wib(seq, col) {
                            // Pool exhaustion: fall back to a conventional
                            // stall — wait in the queue for the *actual*
                            // value, so parked chains can still drain into
                            // the issue queue (otherwise the full queue and
                            // the full pool deadlock each other, the
                            // hazard paper section 3.5 raises).
                            self.stats.wib_pool_stalls += 1;
                            for s in srcs.iter().flatten() {
                                if !self.rf(s.class).is_ready(s.preg) {
                                    let iq = if fp_queue {
                                        &mut self.iq_fp
                                    } else {
                                        &mut self.iq_int
                                    };
                                    iq.demote(seq, s.preg, s.class);
                                    self.rf_mut(s.class).subscribe(s.preg, seq);
                                }
                            }
                        }
                        budget -= 1;
                        continue;
                    }
                    // No WIB: wait bits are never set, unreachable.
                    unreachable!("wait bit without a WIB");
                }

                // Store-wait gating: marked loads wait for older stores'
                // addresses.
                if inst.is_load()
                    && self.storewait.should_wait(pc)
                    && !self.lsq.older_stores_resolved(seq)
                {
                    continue;
                }

                // Two-level register file: budget L2 read ports.
                let mut l2_needed = [0usize; 2];
                for s in srcs.iter().flatten() {
                    if self.rf(s.class).needs_l2_read(s.preg) {
                        l2_needed[s.class as usize] += 1;
                    }
                }
                if l2_reads[0] + l2_needed[0] > l2_ports || l2_reads[1] + l2_needed[1] > l2_ports {
                    continue;
                }

                // Functional unit / memory port.
                let Some(latency) = self.fu.try_issue(inst.fu_kind(), self.now) else {
                    continue;
                };

                // Commit to the issue: charge register-read penalties.
                let mut rf_penalty = 0;
                for s in srcs.iter().flatten() {
                    let p = self.rf_mut(s.class).read_penalty(s.preg);
                    rf_penalty = rf_penalty.max(p);
                }
                l2_reads[0] += l2_needed[0];
                l2_reads[1] += l2_needed[1];
                self.stats.rf_l2_reads += (l2_needed[0] + l2_needed[1]) as u64;

                let iq = if fp_queue {
                    &mut self.iq_fp
                } else {
                    &mut self.iq_int
                };
                iq.remove(seq);
                {
                    let e = self.rob.get_mut(seq).expect("live");
                    e.issued = true;
                    e.cycle_issue = self.now;
                }
                self.stats.issued += 1;
                self.emit(PipeEvent::Issue { seq });
                let exec_start = self.now + 1 + rf_penalty; // register read
                if inst.is_load() {
                    self.schedule(exec_start + 1, Event::LoadAddr(seq));
                } else {
                    self.schedule(exec_start + latency, Event::Complete(seq));
                    // Section 6 extension: treat long non-pipelined FP ops
                    // like misses and park their dependence chains.
                    if self.cfg.wib.as_ref().is_some_and(|w| w.divert_long_fp_ops)
                        && matches!(
                            inst.fu_kind(),
                            wib_isa::inst::FuKind::FpDiv | wib_isa::inst::FuKind::FpSqrt
                        )
                    {
                        self.divert_chain_to_wib(seq);
                    }
                }
                budget -= 1;
            }
            candidates.clear();
            self.scratch_candidates = candidates;
        }
    }

    // ------------------------------------------------------------------
    // Execute-completion events
    // ------------------------------------------------------------------

    fn drain_events(&mut self) {
        while let Some(Reverse(next)) = self.events.peek() {
            if next.at > self.now {
                break;
            }
            let Reverse(s) = self.events.pop().expect("peeked");
            match s.ev {
                Event::Complete(seq) => self.handle_complete(seq),
                Event::LoadAddr(seq) => self.handle_load_addr(seq),
                Event::LoadData(seq) => self.handle_load_data(seq),
            }
        }
    }

    fn handle_complete(&mut self, seq: Seq) {
        let Some(e) = self.rob.get(seq) else { return };
        let inst = e.inst;
        let pc = e.pc;
        let srcs = e.srcs;
        let dest = e.dest;
        let branch = e.branch;
        let a = self.src_value(srcs[0]);
        let b = self.src_value(srcs[1]);
        // Runahead episode: operand poison (false outside episodes).
        let poisoned = |s: Option<SrcRef>| {
            self.ra
                .as_ref()
                .zip(s)
                .is_some_and(|(ra, s)| ra.poison.get(s.class, s.preg))
        };
        let (inv_a, inv_b) = (poisoned(srcs[0]), poisoned(srcs[1]));

        if inst.is_cond_branch() {
            if inv_a || inv_b {
                // A branch on garbage: keep the predicted path rather than
                // resolving on an invalid value (Mutlu: predict and go).
                let e = self.rob.get_mut(seq).expect("live");
                e.completed = true;
                e.cycle_complete = self.now;
                self.emit(PipeEvent::Complete { seq });
                return;
            }
            let taken = exec::branch_taken(&inst, a, b);
            let actual_next = if taken {
                exec::control_target(&inst, pc, a)
            } else {
                pc.wrapping_add(4)
            };
            let bi = branch.expect("branch info recorded at fetch");
            let dir_wrong = taken != bi.pred_taken;
            self.dir
                .resolve(&bi.dir_ckpt.expect("cond"), taken, dir_wrong);
            if taken {
                self.btb.update(pc, actual_next);
            }
            {
                let e = self.rob.get_mut(seq).expect("live");
                e.completed = true;
                e.cycle_complete = self.now;
                e.dir_wrong = dir_wrong;
            }
            self.emit(PipeEvent::Complete { seq });
            if actual_next != bi.pred_next {
                self.squash_redirect(seq, actual_next, &bi, dir_wrong);
            }
        } else if inst.is_jump_indirect() {
            if inv_a {
                // Target computed from garbage: trust the BTB/RAS path.
                if let Some((arch, p, _)) = dest {
                    let link = exec::alu_result(&inst, a, b, pc).expect("jalr links");
                    self.writeback(arch.class(), p, link);
                }
                let e = self.rob.get_mut(seq).expect("live");
                e.completed = true;
                e.cycle_complete = self.now;
                self.emit(PipeEvent::Complete { seq });
                return;
            }
            let actual_next = exec::control_target(&inst, pc, a);
            if let Some((arch, p, _)) = dest {
                let link = exec::alu_result(&inst, a, b, pc).expect("jalr links");
                self.writeback(arch.class(), p, link);
            }
            self.btb.update(pc, actual_next);
            {
                let e = self.rob.get_mut(seq).expect("live");
                e.completed = true;
                e.cycle_complete = self.now;
            }
            self.emit(PipeEvent::Complete { seq });
            let bi = branch.expect("branch info recorded at fetch");
            if actual_next != bi.pred_next {
                self.stats.target_mispredicts += 1;
                self.squash_redirect(seq, actual_next, &bi, false);
            }
        } else if inst.is_store() {
            // Address generation is decoupled from data: the store issued
            // on its base operand alone. Capture the data now if it is
            // ready, otherwise subscribe and complete on its writeback.
            let addr = exec::effective_address(&inst, a);
            let violation = self.lsq.set_store_addr(seq, addr);
            if inv_a || inv_b {
                // Garbage address or data: the pseudo-retired store must
                // not enter the runahead store cache.
                self.ra
                    .as_mut()
                    .expect("poison implies an episode")
                    .poisoned_stores
                    .insert(seq);
            }
            match srcs[1] {
                None => {
                    self.lsq.set_store_data(seq, 0); // r0 data
                    let e = self.rob.get_mut(seq).expect("live");
                    e.completed = true;
                    e.cycle_complete = self.now;
                    self.emit(PipeEvent::Complete { seq });
                }
                Some(s) if self.rf(s.class).is_ready(s.preg) => {
                    self.lsq.set_store_data(seq, b);
                    let e = self.rob.get_mut(seq).expect("live");
                    e.completed = true;
                    e.cycle_complete = self.now;
                    self.emit(PipeEvent::Complete { seq });
                }
                Some(s) => {
                    self.rf_mut(s.class).subscribe(s.preg, seq);
                }
            }
            if let Some(load_seq) = violation {
                // Runahead never replays on ordering: the affected load's
                // value is speculative garbage anyway and the episode's
                // whole pipeline state is discarded at exit.
                if self.ra.is_none() {
                    self.handle_order_violation(load_seq);
                }
            }
        } else {
            if (inv_a || inv_b) && dest.is_some() {
                let (arch, p, _) = dest.expect("checked");
                // Propagate before the writeback below wakes consumers, so
                // a store-data waiter sees its operand already poisoned.
                self.ra
                    .as_mut()
                    .expect("poison implies an episode")
                    .poison
                    .set(arch.class(), p, true);
            }
            let result = exec::alu_result(&inst, a, b, pc);
            let e = self.rob.get_mut(seq).expect("live");
            e.completed = true;
            e.cycle_complete = self.now;
            let column = e.miss_column; // long-FP-op diversion, if enabled
            self.emit(PipeEvent::Complete { seq });
            if let (Some((arch, p, _)), Some(v)) = (dest, result) {
                self.writeback(arch.class(), p, v);
            }
            if let Some(col) = column {
                self.wib
                    .as_mut()
                    .expect("column implies WIB")
                    .column_completed(col);
            }
        }
    }

    fn handle_load_addr(&mut self, seq: Seq) {
        let Some(e) = self.rob.get(seq) else { return };
        let inst = e.inst;
        let a = self.src_value(e.srcs[0]);
        let addr = exec::effective_address(&inst, a);
        self.lsq.set_load_addr(seq, addr);
        self.try_load_data(seq, addr, inst.mem_width());
    }

    fn try_load_data(&mut self, seq: Seq, addr: u32, width: u32) {
        if self.ra.is_some() {
            return self.ra_load_data(seq, addr, width);
        }
        match self.lsq.forward_for_load(seq, addr, width) {
            ForwardResult::Forward(_, bits) => {
                self.pending_load_values.insert(seq, bits);
                self.schedule(self.now + FORWARD_LATENCY, Event::LoadData(seq));
            }
            ForwardResult::BlockedOn(store_seq) => {
                self.blocked_loads.push((seq, store_seq));
                // A load stalled behind a store is another operation of
                // unknown latency: divert its dependence chain to the WIB
                // exactly like a cache miss (the paper's section 3.2
                // extension), otherwise dependents can clog the issue
                // queue and block the very reinsertion that would unclog
                // it.
                self.divert_chain_to_wib(seq);
            }
            ForwardResult::FromMemory => {
                let access = self.hier.data_access(addr, AccessKind::Read, self.now);
                let value = self.mem.read_bits(addr, width);
                self.pending_load_values.insert(seq, value);
                let arrive = access.ready_at.max(self.now + 1);
                self.schedule(arrive, Event::LoadData(seq));
                if let Some(e) = self.rob.get_mut(seq) {
                    e.data_ready_at = arrive;
                }
                // The "load miss" signal is latency-based, like the
                // 21264's: any load whose data will not arrive within the
                // trigger level's hit time diverts its dependence chain to
                // the WIB. (A load merged into an outstanding line fill
                // "hits" in the tag array but still waits out the fill.)
                let latency = access.ready_at.saturating_sub(self.now);
                // CPI-stack attribution (independent of the WIB trigger):
                // classify anything slower than an L1D hit as a miss and
                // record the deepest level it had to wait on.
                if latency > self.cfg.mem.l1d.hit_latency {
                    let kind = if access.to_memory || access.mshr_merged {
                        MissKind::Dram
                    } else {
                        MissKind::L2Hit
                    };
                    if let Some(e) = self.rob.get_mut(seq) {
                        if e.miss_kind.is_none() {
                            e.miss_kind = Some(kind);
                        }
                    }
                    self.emit(PipeEvent::MissStart {
                        seq,
                        addr,
                        to_dram: kind == MissKind::Dram,
                    });
                    if access.mshr_merged {
                        self.emit(PipeEvent::MshrMerge { addr });
                    }
                }
                let missed = match self.cfg.wib.as_ref().map(|w| w.trigger) {
                    Some(WibTrigger::L1Miss) => latency > self.cfg.mem.l1d.hit_latency,
                    Some(WibTrigger::L2Miss) => latency > self.cfg.mem.l2.hit_latency,
                    None => false,
                };
                if missed {
                    self.divert_chain_to_wib(seq);
                }
                self.delay_note_arrival(seq, arrive);
            }
        }
    }

    /// Runahead-episode load: no order-violation machinery, no
    /// blocked-load parking, no miss accounting — just prefetch and keep
    /// the dataflow moving or poison it.
    fn ra_load_data(&mut self, seq: Seq, addr: u32, width: u32) {
        let base_poisoned = self.rob.get(seq).is_some_and(|e| {
            e.srcs[0].is_some_and(|s| {
                self.ra
                    .as_ref()
                    .expect("in an episode")
                    .poison
                    .get(s.class, s.preg)
            })
        });
        if base_poisoned {
            // Garbage address: do not pollute the cache with it.
            return self.ra_inv_load(seq);
        }
        match self.lsq.forward_for_load(seq, addr, width) {
            ForwardResult::Forward(store_seq, bits) => {
                if self
                    .ra
                    .as_ref()
                    .expect("in an episode")
                    .poisoned_stores
                    .contains(&store_seq)
                {
                    return self.ra_inv_load(seq);
                }
                self.pending_load_values.insert(seq, bits);
                self.schedule(self.now + FORWARD_LATENCY, Event::LoadData(seq));
            }
            ForwardResult::BlockedOn(_) => {
                // Waiting out the store could outlive the episode; give up
                // on this value.
                self.ra_inv_load(seq);
            }
            ForwardResult::FromMemory => {
                // THE point of runahead: a real hierarchy access starts
                // the fill early and trains the MSHRs/LRU state that the
                // post-episode replay will hit.
                let access = self.hier.data_access(addr, AccessKind::Read, self.now);
                let exit_at = self.ra.as_ref().expect("in an episode").exit_at;
                if access.to_memory || access.mshr_merged || access.ready_at >= exit_at {
                    // The data cannot arrive before the episode exits. The
                    // `ready_at` check matters for the blocking load's own
                    // refetch: its line is already allocated (an L1 "hit")
                    // but still waits out the in-flight fill, which lands
                    // exactly at `exit_at`. INV now lets dependents keep
                    // prefetching instead of clogging the episode window.
                    return self.ra_inv_load(seq);
                }
                let ra = self.ra.as_ref().expect("in an episode");
                let value = ra.overlay_read(&self.mem, addr, width);
                self.pending_load_values.insert(seq, value);
                self.schedule(access.ready_at.max(self.now + 1), Event::LoadData(seq));
            }
        }
    }

    /// Complete load `seq` with an invalid (poisoned) result next cycle.
    fn ra_inv_load(&mut self, seq: Seq) {
        self.stats.runahead_inv_loads += 1;
        if let Some((arch, p, _)) = self.rob.get(seq).and_then(|e| e.dest) {
            self.ra
                .as_mut()
                .expect("in an episode")
                .poison
                .set(arch.class(), p, true);
        }
        self.pending_load_values.insert(seq, 0);
        self.schedule(self.now + 1, Event::LoadData(seq));
    }

    /// Allocate a bit-vector column for load `seq` and set the wait bit on
    /// its destination so the dependence chain drains into the WIB. No-op
    /// without a WIB, without a destination, if the load already has a
    /// column (a blocked load that retried), or when the column budget is
    /// exhausted (dependents then stall conventionally, as the paper's
    /// limited-bit-vector study models).
    fn divert_chain_to_wib(&mut self, seq: Seq) {
        let Some(wib) = self.wib.as_mut() else { return };
        let Some(e) = self.rob.get(seq) else { return };
        if e.miss_column.is_some() {
            return;
        }
        let Some((arch, p, _)) = e.dest else { return };
        let Some(col) = wib.allocate_column(seq) else {
            self.stats.wib_column_exhausted += 1;
            return;
        };
        self.rob.get_mut(seq).expect("live").miss_column = Some(col);
        self.set_wait_and_wake(arch.class(), p, col);
    }

    fn handle_load_data(&mut self, seq: Seq) {
        let Some(value) = self.pending_load_values.remove(&seq) else {
            return;
        };
        let Some(e) = self.rob.get_mut(seq) else {
            return;
        };
        e.completed = true;
        e.cycle_complete = self.now;
        let dest = e.dest;
        let column = e.miss_column;
        let was_miss = e.miss_kind.is_some();
        self.emit(PipeEvent::Complete { seq });
        if was_miss {
            self.emit(PipeEvent::MissFinish { seq });
        }
        if let Some((arch, p, _)) = dest {
            self.writeback(arch.class(), p, value);
        }
        if let Some(col) = column {
            self.wib
                .as_mut()
                .expect("column implies WIB")
                .column_completed(col);
        }
    }

    fn handle_order_violation(&mut self, load_seq: Seq) {
        let Some(load) = self.rob.get(load_seq) else {
            return;
        };
        let pc = load.pc;
        let hist = load.hist_before;
        let ras = load.ras_before;
        self.stats.order_violations += 1;
        self.storewait.mark(pc);
        self.squash_from(load_seq, pc, 0);
        self.dir.set_history(hist);
        self.ras.restore(&ras);
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    fn squash_redirect(&mut self, branch_seq: Seq, target: u32, bi: &BranchInfo, _dir: bool) {
        self.squash_from(branch_seq + 1, target, self.cfg.mispredict_extra_penalty);
        self.ras.restore(&bi.ras_after);
        // Direction history was repaired by `resolve`.
    }

    /// Remove every instruction with `seq >= from` and refetch at
    /// `new_pc` after `extra_penalty` bubbles. Predictor/RAS repair is the
    /// caller's responsibility (it differs by cause).
    fn squash_from(&mut self, from: Seq, new_pc: u32, extra_penalty: u64) {
        let mut squashed_cols = std::mem::take(&mut self.scratch_cols);
        let mut undo = std::mem::take(&mut self.scratch_undo);
        debug_assert!(squashed_cols.is_empty() && undo.is_empty());
        {
            let undo = &mut undo;
            self.rob.squash_from(from, |e| undo.push(e));
        }
        self.emit(PipeEvent::Squash {
            from_seq: from,
            count: undo.len() as u64,
        });
        for e in undo.drain(..) {
            if !e.issued || e.in_wib {
                // May be in an issue queue or the WIB.
                self.iq_int.remove(e.seq);
                self.iq_fp.remove(e.seq);
            }
            if e.in_wib {
                if let Some(w) = self.wib.as_mut() {
                    w.squash_slot(e.slot);
                } else if let Some(dq) = self.delayq.as_mut() {
                    dq.squash_slot(e.slot);
                } else {
                    unreachable!("parked entry without a parking structure");
                }
            }
            if let Some(col) = e.miss_column {
                squashed_cols.push((col, e.seq));
            }
            if let Some((arch, p, prev)) = e.dest {
                self.rename.restore(arch, prev);
                self.rf_mut(arch.class()).release(p);
            }
        }
        if let Some(wib) = self.wib.as_mut() {
            for &(col, load_seq) in &squashed_cols {
                wib.squash_column(col, load_seq);
            }
        }
        squashed_cols.clear();
        self.scratch_cols = squashed_cols;
        self.scratch_undo = undo;
        self.lsq.squash_from(from);
        self.pending_load_values.retain(|&s, _| s < from);
        self.blocked_loads.retain(|&(l, _)| l < from);
        if let Some(ra) = self.ra.as_mut() {
            ra.poisoned_stores.retain(|&s| s < from);
        }
        self.ifq.clear();
        self.fetch_halted = false;
        self.fetch_pc = new_pc;
        self.fetch_resume_at = self.now + 1 + extra_penalty;
        // CPI stack: while the refilled front end is still in flight the
        // empty window is charged to branch recovery, not fetch supply.
        self.recovery_until = self.fetch_resume_at + self.cfg.front_end_delay;
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn do_commit(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.head() else { break };
            if !head.completed {
                break;
            }
            let e = self.rob.pop_head();
            self.last_commit_cycle = self.now;

            // Co-simulation: the reference interpreter retires in
            // lockstep.
            if let Some(mut checker) = self.checker.take() {
                assert_eq!(
                    e.pc,
                    checker.pc(),
                    "cosim divergence at seq {}: pipeline commits pc {:#x} ({}), reference \
                     expects pc {:#x}",
                    e.seq,
                    e.pc,
                    e.inst,
                    checker.pc()
                );
                checker.step().expect("reference interpreter faulted");
                if let Some((arch, p, _)) = e.dest {
                    let got = self.rf(arch.class()).value(p);
                    let want = checker.reg_bits(arch);
                    assert_eq!(
                        got, want,
                        "cosim divergence at pc {:#x} ({}): {} = {:#x}, reference says {:#x}",
                        e.pc, e.inst, arch, got, want
                    );
                }
                self.checker = Some(checker);
            }

            if e.inst.is_store() {
                let s = self.lsq.pop_store(e.seq);
                let addr = s.addr.expect("committed store has an address");
                self.mem.write_bits(addr, s.width, s.data);
                // Timing: the write drains through the D-cache from the
                // write buffer; commit does not stall on it.
                self.hier.data_access(addr, AccessKind::Write, self.now);
                self.stats.committed_stores += 1;
                // Loads blocked on this store can retry against memory.
                self.retry_loads_blocked_on(e.seq);
            } else if e.inst.is_load() {
                self.lsq.pop_load(e.seq);
                self.stats.committed_loads += 1;
            }

            if let Some((_, _, prev)) = e.dest {
                let class = e.dest.expect("checked").0.class();
                self.rf_mut(class).release(prev);
            }
            if e.inst.is_cond_branch() {
                self.stats.cond_branches += 1;
                if e.dir_wrong {
                    self.stats.dir_mispredicts += 1;
                }
            }
            if e.wib_trips > 0 {
                self.stats.wib_touched_insts += 1;
                self.stats.wib_insertions_committed += e.wib_trips as u64;
                self.stats.wib_max_insertions_per_inst = self
                    .stats
                    .wib_max_insertions_per_inst
                    .max(e.wib_trips as u64);
            }
            if let Some(trace) = &mut self.trace {
                trace.push(InstTrace {
                    seq: e.seq,
                    pc: e.pc,
                    text: e.inst.to_string(),
                    fetch: e.cycle_fetch,
                    dispatch: e.cycle_dispatch,
                    issue: e.issued.then_some(e.cycle_issue),
                    complete: e.cycle_complete,
                    commit: self.now,
                    wib_trips: e.wib_trips,
                });
            }
            self.stats.committed += 1;
            self.emit(PipeEvent::Commit {
                seq: e.seq,
                pc: e.pc,
            });
            if e.inst.is_halt() {
                self.halted = true;
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Runahead backend (see `crate::runahead`)
    // ------------------------------------------------------------------

    /// Enter a runahead episode if the window head is a load stalled on a
    /// DRAM-latency miss with enough service time left to be worth the
    /// checkpoint/restore round trip. The whole pipeline is flushed (the
    /// fill stays in flight in the MSHRs), architectural state is
    /// checkpointed, and fetch restarts at the blocking load — this time
    /// pre-executing for prefetch value only.
    fn maybe_enter_runahead(&mut self) {
        let Backend::Runahead { min_remaining } = self.cfg.backend else {
            return;
        };
        // Entry condition: the machine must actually be stalled behind the
        // miss — the window is full, or dispatch spent last cycle blocked
        // on some other full back-end resource (issue queue, LSQ, physical
        // registers: the miss's dependence chain clogs those well before a
        // large active list fills). Entering while the front end still has
        // headroom would squash useful in-flight work for nothing.
        if self.rob.free_slots() > 0 && self.dispatch_block.is_none() {
            return;
        }
        let Some(head) = self.rob.head() else { return };
        if head.completed || head.miss_kind != Some(MissKind::Dram) {
            return;
        }
        // Entry costs a full squash and exit a pipeline rebuild; demand at
        // least a couple of cycles of covered latency beyond that.
        if head.data_ready_at <= self.now + min_remaining.max(2) {
            return;
        }
        let head_seq = head.seq;
        let resume_pc = head.pc;
        let exit_at = head.data_ready_at;
        let hist = head.hist_before;
        let ras = head.ras_before;
        self.stats.runahead_episodes += 1;
        self.squash_from(head_seq, resume_pc, 0);
        self.dir.set_history(hist);
        self.ras.restore(&ras);
        // The squash restored the rename map to the committed state, so
        // the current mappings *are* the architectural values.
        let mut arch = [0u64; NUM_ARCH_REGS];
        for flat in 0..NUM_ARCH_REGS as u8 {
            let r = ArchReg::from_flat(flat);
            arch[flat as usize] = self.rf(r.class()).value(self.rename.lookup(r));
        }
        self.ra = Some(RunaheadState::new(
            resume_pc,
            exit_at,
            arch,
            hist,
            ras,
            self.cfg.regs_per_class as usize,
        ));
    }

    /// The blocking load's data arrived: discard every trace of the
    /// episode, restore the checkpoint and replay from the blocking load
    /// against the now-warmed hierarchy.
    fn exit_runahead(&mut self) {
        let ra = self.ra.take().expect("exit without an episode");
        // Pseudo-retired instructions' undo records are gone, so the
        // pipeline structures are rebuilt rather than unwound. Sequence
        // numbers continue where they left off (stale events must keep
        // failing their lookups); the memory hierarchy and predictors
        // keep their runahead training — that is the whole benefit.
        self.events.clear();
        self.ifq.clear();
        self.pending_load_values.clear();
        self.blocked_loads.clear();
        self.lsq = LoadStoreQueue::new(self.cfg.load_queue as usize, self.cfg.store_queue as usize);
        self.rob = ActiveList::new_resuming(self.cfg.active_list as usize, self.rob.next_seq());
        self.iq_int = IssueQueue::new(self.cfg.iq_int_size as usize);
        self.iq_fp = IssueQueue::new(self.cfg.iq_fp_size as usize);
        self.fu = FuPool::new(self.cfg.fu.clone());
        self.ra_lost_l2_reads += self.rf_int.l2_reads + self.rf_fp.l2_reads;
        let timing = rf_timing(self.cfg);
        self.rename = RenameMap::new();
        self.rf_int = RegFile::new(self.cfg.regs_per_class as usize, 32, timing);
        self.rf_fp = RegFile::new(self.cfg.regs_per_class as usize, 32, timing);
        for flat in 0..NUM_ARCH_REGS as u8 {
            let r = ArchReg::from_flat(flat);
            let p = self.rename.lookup(r);
            match r.class() {
                RegClass::Int => self.rf_int.poke(p, ra.arch[flat as usize]),
                RegClass::Fp => self.rf_fp.poke(p, ra.arch[flat as usize]),
            }
        }
        self.dir.set_history(ra.hist);
        self.ras.restore(&ra.ras);
        self.fetch_halted = false;
        self.fetch_pc = ra.resume_pc;
        self.fetch_resume_at = self.now + 1;
        self.recovery_until = self.fetch_resume_at + self.cfg.front_end_delay;
        self.dispatch_block = None;
        self.last_commit_cycle = self.now;
    }

    /// Commit-stage stand-in during an episode: completed instructions
    /// leave the window and free their resources, but nothing becomes
    /// architectural — no checker step, no commit counters, no memory
    /// writes (non-poisoned store data lands in the episode's store cache
    /// so later runahead loads stay accurate).
    fn do_pseudo_retire(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.head() else { break };
            if !head.completed {
                break;
            }
            let e = self.rob.pop_head();
            self.last_commit_cycle = self.now;
            self.stats.runahead_pseudo_retired += 1;
            if e.inst.is_store() {
                let s = self.lsq.pop_store(e.seq);
                let addr = s.addr.expect("pseudo-retired store has an address");
                let ra = self.ra.as_mut().expect("in an episode");
                if !ra.poisoned_stores.remove(&e.seq) {
                    ra.store_bytes(addr, s.width, s.data);
                    // Write prefetch: train the hierarchy like a committed
                    // store would, without touching memory contents.
                    self.hier.data_access(addr, AccessKind::Write, self.now);
                }
            } else if e.inst.is_load() {
                self.lsq.pop_load(e.seq);
            }
            if let Some((arch, _, prev)) = e.dest {
                self.rf_mut(arch.class()).release(prev);
            }
            if e.inst.is_halt() {
                // Speculative program end: idle out the episode, then the
                // replay retires the halt architecturally.
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Fast-forward through provably idle stall cycles.
    ///
    /// When the machine is *quiescent* — the window head is incomplete
    /// (typically parked under a cache miss), no completion event is due
    /// before some future cycle, no issue-queue entry is selectable, the
    /// WIB has nothing extractable, and fetch/dispatch are idle or blocked
    /// on a full resource — every stage of [`Engine::step`] is a no-op
    /// except the per-cycle bookkeeping (CPI attribution, stall counters,
    /// occupancy samples), and nothing can change machine state before the
    /// next scheduled event. Those cycles are all identical, so this
    /// routine applies their bookkeeping in bulk and jumps `now` forward.
    /// The statistics are bit-identical to stepping cycle by cycle (the
    /// golden cycle-identity fixtures pin the equivalence down); only wall
    /// clock changes. On miss-dominated workloads — the regime the paper
    /// targets — this skips the bulk of all simulated cycles.
    ///
    /// Returns the cycles consumed; 0 means "run this cycle normally".
    /// The skip never crosses a boundary something else observes cycle by
    /// cycle: the next event time, fetch resume, IFQ-front readiness, the
    /// watchdog deadline, the run limit (`budget`), or a stats-epoch
    /// boundary (the run loop samples an interval exactly there).
    fn try_skip(&mut self, budget: u64) -> u64 {
        if self.debug_trace || self.no_skip || self.halted {
            return 0;
        }
        // Runahead is never quiescent under a miss — the stall is exactly
        // when it enters an episode and keeps executing.
        if matches!(self.cfg.backend, Backend::Runahead { .. }) {
            return 0;
        }
        // Commit is blocked on an incomplete head (which also means the
        // window is nonempty and no halt can retire mid-skip).
        let Some(head) = self.rob.head() else {
            return 0;
        };
        if head.completed {
            return 0;
        }
        let head_miss = head.miss_kind;
        // No event due this cycle; with *no* event pending at all the
        // machine is wedged, which the watchdog should report normally.
        let Some(Reverse(next_ev)) = self.events.peek() else {
            return 0;
        };
        if next_ev.at <= self.now {
            return 0;
        }
        let mut cap = next_ev.at - self.now;
        // Issue is a no-op: nothing selectable, nothing extractable.
        if self.iq_int.has_ready() || self.iq_fp.has_ready() {
            return 0;
        }
        if self.wib.as_ref().is_some_and(|w| !w.quiescent()) {
            return 0;
        }
        // The delay queue reinserts at exact cycles: skip at most up to
        // its next wake.
        if let Some(dq) = self.delayq.as_mut() {
            match dq.next_wake() {
                Some(w) if w <= self.now => return 0,
                Some(w) => cap = cap.min(w - self.now),
                None => {}
            }
        }
        // Fetch idle: halted, IFQ full, or waiting out an I-miss/redirect
        // bubble (then skip at most up to the resume cycle).
        if !self.fetch_halted && self.ifq.len() < self.cfg.ifq_size as usize {
            if self.fetch_resume_at <= self.now {
                return 0;
            }
            cap = cap.min(self.fetch_resume_at - self.now);
        }
        // Dispatch idle (IFQ empty, or its front still in the front-end
        // pipe) or parked on one full resource for the whole stretch.
        let mut stall = None;
        match self.ifq.front() {
            None => {}
            Some(f) if f.ready_at > self.now => cap = cap.min(f.ready_at - self.now),
            Some(f) => {
                let inst = f.inst;
                match self.dispatch_stall_category(&inst) {
                    Some(cat) => stall = Some(cat),
                    // Dispatch would make progress: not quiescent.
                    None => return 0,
                }
            }
        }
        // Never skip past the watchdog deadline; the normal path panics
        // there with full diagnostics.
        cap = cap.min((self.last_commit_cycle + WATCHDOG_CYCLES).saturating_sub(self.now));
        // Stop exactly on run-limit and stats-epoch boundaries.
        cap = cap.min(budget);
        let epoch = self.cfg.stats_epoch.max(1);
        cap = cap.min(epoch - self.stats.cycles % epoch);
        if cap <= 1 {
            return 0;
        }
        let k = cap;

        // Replicate the k skipped cycles' bookkeeping on the frozen state.
        self.dispatch_block = None;
        if let Some(cat) = stall {
            self.charge_dispatch_stall(cat, k);
        }
        let cat = match head_miss {
            Some(MissKind::L2Hit) => CpiCategory::L1dMiss,
            Some(MissKind::Dram) => CpiCategory::L2Miss,
            None => stall.unwrap_or(CpiCategory::Exec),
        };
        self.stats.cpi.add_n(cat, k);
        let occ = crate::stats::OCCUPANCY_SAMPLE_PERIOD;
        let first = self.now.next_multiple_of(occ);
        if first < self.now + k {
            let n = (self.now + k - 1 - first) / occ + 1;
            self.stats
                .occupancy_window
                .record_n(self.rob.len() as u64, n);
            self.stats
                .occupancy_iq
                .record_n((self.iq_int.len() + self.iq_fp.len()) as u64, n);
            self.stats
                .occupancy_wib
                .record_n(self.parked_resident() as u64, n);
        }
        // `storewait.tick` needs no catch-up: it clears in whole intervals
        // on its next call, and no store-order marks can land mid-skip.
        self.now += k;
        k
    }

    /// Fold one profiled cycle's stage laps into the run profile (no-op
    /// when the cycle was not sampled).
    fn record_profile_laps(&mut self, profiled: bool, lap_ns: &[u64; STAGE_COUNT]) {
        if !profiled {
            return;
        }
        self.profile.sampled_cycles += 1;
        for (total, lap) in self.profile.stage_ns.iter_mut().zip(lap_ns.iter()) {
            *total += lap;
        }
    }

    fn step(&mut self) {
        if self.debug_trace && self.now == 20_000 {
            eprintln!(
                "cyc {}: iqi={} iqf={} rob={} wib={:?}",
                self.now,
                self.iq_int.len(),
                self.iq_fp.len(),
                self.rob.len(),
                self.wib.as_ref().map(Window::resident)
            );
            for (name, q) in [("int", &self.iq_int), ("fp", &self.iq_fp)] {
                for (seq, e) in q.dump().into_iter().take(40) {
                    let rob = self.rob.get(seq);
                    eprintln!(
                        "  {name} {seq} {:?} sat={} pret={} srcs={:?} rf={:?}",
                        rob.map(|r| r.inst.to_string()),
                        e.is_satisfied(),
                        e.is_pretend(),
                        e.srcs,
                        e.srcs
                            .iter()
                            .flatten()
                            .map(|(s, _)| (
                                self.rf(s.class).is_ready(s.preg),
                                self.rf(s.class).wait_column(s.preg)
                            ))
                            .collect::<Vec<_>>()
                    );
                }
            }
        }
        // Stage profiling samples one cycle in PROFILE_SAMPLE_PERIOD: a
        // monotonic-clock lap after each stage, nothing on the other 1023
        // cycles (the mask test and a dead branch). No allocation either
        // way — the alloc-gate covers this path.
        let mut lap_at = if (self.now & (PROFILE_SAMPLE_PERIOD - 1)) == 0 {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let mut lap_ns = [0u64; STAGE_COUNT];
        let committed_before = self.stats.committed;
        self.storewait.tick(self.now);
        if self.ra.as_ref().is_some_and(|ra| self.now >= ra.exit_at) {
            self.exit_runahead();
        }
        if self.ra.is_some() {
            self.do_pseudo_retire();
        } else {
            self.do_commit();
        }
        profile_lap(&mut lap_at, &mut lap_ns[0]);
        if self.halted {
            // The halt itself retired this cycle: useful work.
            self.stats.cpi.add(CpiCategory::Base);
            self.record_profile_laps(lap_at.is_some(), &lap_ns);
            return;
        }
        if self.ra.is_none() {
            self.maybe_enter_runahead();
        }
        self.drain_events();
        profile_lap(&mut lap_at, &mut lap_ns[1]);
        self.dispatch_block = None;
        self.do_dispatch();
        profile_lap(&mut lap_at, &mut lap_ns[2]);
        self.do_issue();
        profile_lap(&mut lap_at, &mut lap_ns[3]);
        self.do_fetch();
        profile_lap(&mut lap_at, &mut lap_ns[4]);
        self.attribute_cycle(committed_before);
        if self
            .now
            .is_multiple_of(crate::stats::OCCUPANCY_SAMPLE_PERIOD)
        {
            self.stats.occupancy_window.record(self.rob.len() as u64);
            self.stats
                .occupancy_iq
                .record((self.iq_int.len() + self.iq_fp.len()) as u64);
            self.stats
                .occupancy_wib
                .record(self.parked_resident() as u64);
        }
        if cfg!(feature = "checked") || self.machine_check {
            if let Err(e) = self.machine_check() {
                panic!("{}", crate::check::at_cycle(self.now, &e));
            }
        }
        profile_lap(&mut lap_at, &mut lap_ns[5]);
        self.record_profile_laps(lap_at.is_some(), &lap_ns);
        self.now += 1;
        if self.now - self.last_commit_cycle > WATCHDOG_CYCLES {
            self.watchdog_panic();
        }
    }

    // ------------------------------------------------------------------
    // Machine check (see `crate::check`)
    // ------------------------------------------------------------------

    /// Run every structure's invariant checker plus the cross-structure
    /// ownership census against the current cycle's settled state.
    fn machine_check(&self) -> Result<(), String> {
        use crate::check::component;
        component("int", self.iq_int.check_invariants())?;
        component("fp", self.iq_fp.check_invariants())?;
        self.lsq.check_invariants()?;
        self.rob.check_invariants()?;
        component("int", self.rf_int.check_invariants())?;
        component("fp", self.rf_fp.check_invariants())?;
        if let Some(w) = &self.wib {
            w.check_invariants()?;
        }
        if let Some(dq) = &self.delayq {
            dq.check_invariants()?;
        }
        self.ownership_census()
    }

    /// Cross-structure ownership census.
    ///
    /// - Every live, uncommitted instruction that needs an issue-queue
    ///   entry is in **exactly one** residence state: its issue queue, the
    ///   WIB, or issued (executing / waiting on an event).
    /// - The `in_wib` active-list flag agrees with the window's own notion
    ///   of which slots are parked, and the window's resident count equals
    ///   the number of flagged entries (so the window holds no strays).
    /// - Load/store-queue occupancy mirrors the `in_lq`/`in_sq` flags.
    /// - A wait bit always names a column still tracking an outstanding
    ///   load (wait bits are cleared at reinsertion and writeback, both of
    ///   which happen before the column can be freed).
    /// - Physical registers are conserved per class: the rename map plus
    ///   the previous mappings recorded by in-flight destinations claim
    ///   every non-free register exactly once.
    fn ownership_census(&self) -> Result<(), String> {
        let mut parked = 0usize;
        for e in self.rob.iter() {
            let in_iq = Engine::needs_iq(&e.inst) && self.iq_for_ref(&e.inst).contains(e.seq);
            if e.in_wib {
                parked += 1;
            }
            let slot_parked = self.wib.as_ref().is_some_and(|w| w.contains(e.slot))
                || self.delayq.as_ref().is_some_and(|dq| dq.contains(e.slot));
            if e.in_wib != slot_parked {
                return Err(format!(
                    "census: seq {} in_wib={} but window slot {} parked={}",
                    e.seq, e.in_wib, e.slot, slot_parked
                ));
            }
            if e.completed {
                if in_iq || e.in_wib {
                    return Err(format!(
                        "census: completed seq {} still resident (iq={in_iq}, wib={})",
                        e.seq, e.in_wib
                    ));
                }
                continue;
            }
            if !Engine::needs_iq(&e.inst) {
                return Err(format!(
                    "census: seq {} ({}) completes in the front end yet is not completed",
                    e.seq, e.inst
                ));
            }
            let states = in_iq as u32 + e.in_wib as u32 + e.issued as u32;
            if states != 1 {
                return Err(format!(
                    "census: seq {} ({}) in {states} residence states \
                     (iq={in_iq}, wib={}, issued={})",
                    e.seq, e.inst, e.in_wib, e.issued
                ));
            }
        }
        if let Some(w) = &self.wib {
            if w.resident() != parked {
                return Err(format!(
                    "census: window resident {} != {parked} in_wib active-list entries",
                    w.resident()
                ));
            }
        } else if let Some(dq) = &self.delayq {
            if dq.resident() != parked {
                return Err(format!(
                    "census: delay-queue resident {} != {parked} parked active-list entries",
                    dq.resident()
                ));
            }
        } else if parked > 0 {
            return Err(format!(
                "census: {parked} parked entries without a parking structure"
            ));
        }

        let lq: Vec<Seq> = self.lsq.loads().map(|l| l.seq).collect();
        let sq: Vec<Seq> = self.lsq.stores().map(|s| s.seq).collect();
        let checks: [(&str, &[Seq], fn(&RobEntry) -> bool); 2] =
            [("lq", &lq, |e| e.in_lq), ("sq", &sq, |e| e.in_sq)];
        for (name, queue, flag) in checks {
            for &seq in queue {
                match self.rob.get(seq) {
                    None => {
                        return Err(format!("census: {name} holds dead seq {seq}"));
                    }
                    Some(e) if !flag(e) => {
                        return Err(format!("census: {name} holds unflagged seq {seq}"));
                    }
                    Some(_) => {}
                }
            }
            let flagged = self.rob.iter().filter(|e| flag(e)).count();
            if flagged != queue.len() {
                return Err(format!(
                    "census: {flagged} {name}-flagged entries vs {} queued",
                    queue.len()
                ));
            }
        }

        for (name, rf) in [("int", &self.rf_int), ("fp", &self.rf_fp)] {
            for (r, col) in rf.waiting_regs() {
                if !self.wib.as_ref().is_some_and(|w| w.column_live(col)) {
                    return Err(format!("census: {name} {r} waits on dead column {col}"));
                }
            }
        }

        for class in [RegClass::Int, RegClass::Fp] {
            let name = match class {
                RegClass::Int => "int",
                RegClass::Fp => "fp",
            };
            let rf = self.rf(class);
            let mut claims = vec![0u32; rf.num_regs()];
            for flat in 0..NUM_ARCH_REGS as u8 {
                let a = ArchReg::from_flat(flat);
                if a.class() == class {
                    claims[self.rename.lookup(a).0 as usize] += 1;
                }
            }
            for e in self.rob.iter() {
                if let Some((arch, _, prev)) = e.dest {
                    if arch.class() == class {
                        claims[prev.0 as usize] += 1;
                    }
                }
            }
            for (i, &c) in claims.iter().enumerate() {
                let free = rf.is_free(PhysReg(i as u16));
                if (free && c != 0) || (!free && c != 1) {
                    return Err(format!(
                        "census: {name} p{i} claimed {c} times, free={free}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Charge this cycle to exactly one CPI-stack category. Called once
    /// per non-halting [`Engine::step`]; together with the halt cycle's
    /// `Base` charge this makes the stack sum exactly to the cycle count.
    ///
    /// Priority order (first match wins):
    /// 1. at least one instruction committed → `Base`
    /// 2. empty window → `BranchRecovery` while a squash redirect is
    ///    still refilling the front end, else `FrontEnd`
    /// 3. the window head is an incomplete load miss → `L1dMiss`/`L2Miss`
    /// 4. dispatch stopped on a full resource → that resource's category
    /// 5. otherwise → `Exec` (dependence/latency/issue-bandwidth limits)
    fn attribute_cycle(&mut self, committed_before: u64) {
        let cat = if self.stats.committed > committed_before {
            CpiCategory::Base
        } else if self.rob.is_empty() {
            if self.now < self.recovery_until {
                CpiCategory::BranchRecovery
            } else {
                CpiCategory::FrontEnd
            }
        } else if let Some(kind) = self
            .rob
            .head()
            .filter(|h| !h.completed)
            .and_then(|h| h.miss_kind)
        {
            match kind {
                MissKind::L2Hit => CpiCategory::L1dMiss,
                MissKind::Dram => CpiCategory::L2Miss,
            }
        } else if let Some(block) = self.dispatch_block {
            block
        } else {
            CpiCategory::Exec
        };
        self.stats.cpi.add(cat);
    }

    /// Close an interval: record one [`IntervalSample`] covering the last
    /// `stats_epoch` cycles.
    fn sample_interval(&mut self) {
        let epoch = self.cfg.stats_epoch.max(1);
        let committed = self.stats.committed - self.interval_committed_mark;
        self.interval_committed_mark = self.stats.committed;
        let sample = IntervalSample {
            cycle: self.stats.cycles,
            committed,
            ipc: committed as f64 / epoch as f64,
            window_occupancy: self.rob.len() as u64,
            iq_occupancy: (self.iq_int.len() + self.iq_fp.len()) as u64,
            wib_resident: self.parked_resident() as u64,
            wib_columns_in_use: self.wib.as_ref().map_or(0, |w| w.columns_in_use() as u64),
            outstanding_misses: self.hier.inflight_fills(self.now) as u64,
        };
        self.stats.intervals.push(sample);
    }

    fn watchdog_panic(&self) -> ! {
        let head = self.rob.head();
        panic!(
            "no commit for {WATCHDOG_CYCLES} cycles at cycle {}: head={:?} pc={:#x?} \
             completed={:?} issued={:?} in_wib={:?}, iq_int={}, iq_fp={}, rob={}, \
             wib_resident={:?}, events={}, fetch_pc={:#x}",
            self.now,
            head.map(|e| e.inst.to_string()),
            head.map(|e| e.pc),
            head.map(|e| e.completed),
            head.map(|e| e.issued),
            head.map(|e| e.in_wib),
            self.iq_int.len(),
            self.iq_fp.len(),
            self.rob.len(),
            self.wib.as_ref().map(Window::resident),
            self.events.len(),
            self.fetch_pc,
        );
    }

    fn run(&mut self, limit: RunLimit) -> RunResult {
        self.last_commit_cycle = self.now;
        let epoch = self.cfg.stats_epoch.max(1);
        while !self.halted
            && !self.cancelled
            && self.stats.committed < limit.max_insts
            && self.stats.cycles < limit.max_cycles
        {
            let skipped = self.try_skip(limit.max_cycles - self.stats.cycles);
            if skipped == 0 {
                self.step();
            }
            self.stats.cycles += skipped.max(1);
            if self.stats.cycles.is_multiple_of(epoch) {
                self.sample_interval();
                // Cancellation poll rides the epoch boundary (fast-forward
                // never skips past one), so the per-cycle path is untouched.
                if self.cancel.as_ref().is_some_and(CancelToken::should_stop) {
                    self.cancelled = true;
                }
            }
        }
        self.stats.mem = self.hier.stats();
        self.stats.rf_l2_reads = self.ra_lost_l2_reads + self.rf_int.l2_reads + self.rf_fp.l2_reads;
        if let Some(w) = &self.wib {
            let ws = w.stats();
            self.stats.wib_insertions = ws.insertions;
            self.stats.wib_pool_stalls = self.stats.wib_pool_stalls.max(w.insert_failures());
        }
        RunResult {
            stats: self.stats.clone(),
            halted: self.halted,
            cancelled: self.cancelled,
            profile: self.profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wib_isa::asm::ProgramBuilder;
    use wib_isa::reg::*;

    fn run_cosim(cfg: MachineConfig, prog: &Program, n: u64) -> RunResult {
        let mut p = Processor::new(cfg);
        p.enable_cosim();
        p.run_program(prog, RunLimit::instructions(n))
    }

    fn sum_loop() -> Program {
        let mut b = ProgramBuilder::new(0x1000);
        b.li(R1, 100);
        b.li(R2, 0);
        b.label("loop");
        b.add(R2, R2, R1);
        b.addi(R1, R1, -1);
        b.bne(R1, R0, "loop");
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn base_machine_runs_simple_loop() {
        let r = run_cosim(MachineConfig::base_8way(), &sum_loop(), 10_000);
        assert!(r.halted);
        assert!(r.stats.committed > 300);
        assert!(r.ipc() > 0.5, "ipc {}", r.ipc());
    }

    #[test]
    fn wib_machine_runs_simple_loop() {
        let r = run_cosim(MachineConfig::wib_2k(), &sum_loop(), 10_000);
        assert!(r.halted);
    }

    #[test]
    fn store_load_forwarding_is_correct() {
        let mut b = ProgramBuilder::new(0x1000);
        b.li(R1, 0x8000);
        b.li(R2, 1234);
        b.sw(R2, R1, 0);
        b.lw(R3, R1, 0); // must forward from the store
        b.add(R4, R3, R3);
        b.sw(R4, R1, 4);
        b.lw(R5, R1, 4);
        b.halt();
        let r = run_cosim(MachineConfig::base_8way(), &b.finish().unwrap(), 1000);
        assert!(r.halted);
    }

    #[test]
    fn pointer_chase_with_misses() {
        // A short linked list spread across cache lines.
        let mut b = ProgramBuilder::new(0x1000);
        let nodes = 64u32;
        let base = 0x10_0000u32;
        let stride = 4096 + 64; // new page + new line every hop
        let addrs: Vec<u32> = (0..nodes).map(|i| base + i * stride).collect();
        for i in 0..nodes as usize {
            let next = if i + 1 < nodes as usize {
                addrs[i + 1]
            } else {
                0
            };
            b.data_u32(addrs[i], &[next, i as u32]);
        }
        b.li(R1, addrs[0]);
        b.li(R3, 0);
        b.label("walk");
        b.lw(R2, R1, 4); // payload
        b.add(R3, R3, R2);
        b.lw(R1, R1, 0); // next pointer (dependent miss)
        b.bne(R1, R0, "walk");
        b.halt();
        let prog = b.finish().unwrap();
        let base_r = run_cosim(MachineConfig::base_8way(), &prog, 10_000);
        let wib_r = run_cosim(MachineConfig::wib_2k(), &prog, 10_000);
        assert!(base_r.halted && wib_r.halted);
        assert_eq!(base_r.stats.committed, wib_r.stats.committed);
    }

    #[test]
    fn wib_actually_engages_on_independent_misses() {
        // Independent streaming loads with dependent consumers: the WIB
        // should capture the consumers and expose miss parallelism.
        let mut b = ProgramBuilder::new(0x1000);
        b.li(R1, 0x20_0000);
        b.li(R4, 256); // iterations
        b.li(R5, 0);
        b.label("loop");
        b.lw(R2, R1, 0); // miss
        b.add(R3, R2, R2); // dependent
        b.add(R5, R5, R3); // dependent chain
        b.addi(R1, R1, 4096); // next page
        b.addi(R4, R4, -1);
        b.bne(R4, R0, "loop");
        b.halt();
        let prog = b.finish().unwrap();
        let wib_r = run_cosim(MachineConfig::wib_2k(), &prog, 10_000);
        assert!(wib_r.halted);
        assert!(wib_r.stats.wib_insertions > 0, "WIB never used");
        let base_r = run_cosim(MachineConfig::base_8way(), &prog, 10_000);
        assert!(
            wib_r.ipc() > base_r.ipc(),
            "WIB {} should beat base {} on this kernel",
            wib_r.ipc(),
            base_r.ipc()
        );
    }

    #[test]
    fn function_calls_exercise_ras() {
        let mut b = ProgramBuilder::new(0x1000);
        b.li(R10, 50);
        b.li(R11, 0);
        b.label("loop");
        b.jal("leaf");
        b.addi(R10, R10, -1);
        b.bne(R10, R0, "loop");
        b.halt();
        b.label("leaf");
        b.addi(R11, R11, 3);
        b.ret();
        let r = run_cosim(MachineConfig::base_8way(), &b.finish().unwrap(), 10_000);
        assert!(r.halted);
    }

    #[test]
    fn branchy_code_with_mispredictions() {
        // Data-dependent branches on a pseudo-random sequence (LCG).
        let mut b = ProgramBuilder::new(0x1000);
        b.li(R1, 12345); // lcg state
        b.li(R2, 200); // iterations
        b.li(R3, 0);
        b.li(R7, 1103515245 & 0xffff);
        b.label("loop");
        b.mul(R1, R1, R7);
        b.addi(R1, R1, 12345);
        b.andi(R4, R1, 1);
        b.beq(R4, R0, "even");
        b.addi(R3, R3, 1);
        b.j("next");
        b.label("even");
        b.addi(R3, R3, 2);
        b.label("next");
        b.addi(R2, R2, -1);
        b.bne(R2, R0, "loop");
        b.halt();
        let r = run_cosim(MachineConfig::base_8way(), &b.finish().unwrap(), 10_000);
        assert!(r.halted);
        assert!(r.stats.cond_branches >= 400);
        assert!(
            r.stats.dir_mispredicts > 0,
            "LCG parity should mispredict sometimes"
        );
    }

    #[test]
    fn order_violation_replay() {
        // A store whose address depends on a long chain, followed closely
        // by a load to the same address: the load speculates ahead and
        // must replay.
        let mut b = ProgramBuilder::new(0x1000);
        b.li(R9, 0x8000);
        b.li(R8, 77);
        b.li(R7, 40); // iterations
        b.label("loop");
        // Slow chain feeding the store address.
        b.mul(R1, R9, R8);
        b.mul(R1, R1, R8);
        b.sub(R1, R1, R1); // becomes 0
        b.add(R1, R1, R9); // = 0x8000, slowly
        b.sw(R8, R1, 0); // store to 0x8000
        b.lw(R2, R9, 0); // load from 0x8000 executes first
        b.add(R3, R3, R2);
        b.addi(R7, R7, -1);
        b.bne(R7, R0, "loop");
        b.halt();
        let r = run_cosim(MachineConfig::base_8way(), &b.finish().unwrap(), 10_000);
        assert!(r.halted);
        assert!(r.stats.order_violations > 0, "expected at least one replay");
    }

    #[test]
    fn fp_workload_runs() {
        let mut b = ProgramBuilder::new(0x1000);
        b.data_f64(0x8000, &[1.0, 2.0, 3.0, 4.0]);
        b.li(R1, 0x8000);
        b.li(R2, 100);
        b.fld(F1, R1, 0);
        b.fld(F2, R1, 8);
        b.label("loop");
        b.fmul(F3, F1, F2);
        b.fadd(F1, F3, F2);
        b.fdiv(F4, F1, F2);
        b.fsqrt(F5, F4);
        b.addi(R2, R2, -1);
        b.bne(R2, R0, "loop");
        b.fsd(F5, R1, 16);
        b.halt();
        let r = run_cosim(MachineConfig::base_8way(), &b.finish().unwrap(), 10_000);
        assert!(r.halted);
    }

    #[test]
    fn limits_stop_runaway_programs() {
        let mut b = ProgramBuilder::new(0x1000);
        b.label("spin");
        b.addi(R1, R1, 1);
        b.j("spin");
        let prog = b.finish().unwrap();
        let p = Processor::new(MachineConfig::base_8way());
        let r = p.run_program(&prog, RunLimit::instructions(5_000));
        assert!(!r.halted);
        assert!(r.stats.committed >= 5_000);
        let r = p.run_program(&prog, RunLimit::cycles(1_000));
        assert_eq!(r.stats.cycles, 1_000);
    }

    #[test]
    fn cancel_token_stops_a_run_within_one_epoch() {
        let mut b = ProgramBuilder::new(0x1000);
        b.label("spin");
        b.addi(R1, R1, 1);
        b.j("spin");
        let prog = b.finish().unwrap();
        let cfg = MachineConfig::base_8way().with_stats_epoch(1_000);
        // A token tripped before the run starts: the engine notices at the
        // first epoch boundary and unwinds, well short of the cycle limit.
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let mut p = Processor::new(cfg.clone());
        p.set_cancel_token(token);
        let r = p.run_program(&prog, RunLimit::cycles(1_000_000));
        assert!(r.cancelled && !r.halted);
        assert_eq!(r.stats.cycles, 1_000, "stop lands on the epoch boundary");
        // An untripped token changes nothing, and `cancelled` stays false.
        let mut p = Processor::new(cfg);
        p.set_cancel_token(crate::cancel::CancelToken::new());
        let r = p.run_program(&prog, RunLimit::instructions(5_000));
        assert!(!r.cancelled && r.stats.committed >= 5_000);
    }

    #[test]
    fn expired_deadline_cancels_warmup_and_run() {
        let mut b = ProgramBuilder::new(0x1000);
        b.li(R1, 1_000_000);
        b.label("loop");
        b.addi(R1, R1, -1);
        b.bne(R1, R0, "loop");
        b.halt();
        let prog = b.finish().unwrap();
        let token = crate::cancel::CancelToken::with_deadline(std::time::Duration::ZERO);
        let mut p = Processor::new(MachineConfig::base_8way());
        p.set_cancel_token(token.clone());
        let r = p.run_program_warmed(&prog, 500_000, RunLimit::instructions(1_000_000));
        assert!(r.cancelled && !r.halted);
        assert!(
            !token.is_cancelled(),
            "deadline expiry is not an explicit cancel"
        );
        assert!(
            r.stats.committed < 1_000_000,
            "warm-up poll must have aborted the run early"
        );
    }

    #[test]
    fn warmed_run_matches_architecture() {
        let prog = sum_loop();
        let mut p = Processor::new(MachineConfig::base_8way());
        p.enable_cosim();
        let r = p.run_program_warmed(&prog, 50, RunLimit::instructions(10_000));
        assert!(r.halted);
        // 50 instructions were skipped; the detailed run commits the rest.
        assert!(r.stats.committed < 400);
    }

    #[test]
    fn conventional_large_iq_runs() {
        let r = run_cosim(MachineConfig::conventional(256), &sum_loop(), 10_000);
        assert!(r.halted);
    }

    fn streaming_misses() -> Program {
        let mut b = ProgramBuilder::new(0x1000);
        b.li(R1, 0x20_0000);
        b.li(R4, 64);
        b.li(R5, 0);
        b.label("loop");
        b.lw(R2, R1, 0); // miss
        b.add(R3, R2, R2); // dependent
        b.add(R5, R5, R3);
        b.addi(R1, R1, 4096);
        b.addi(R4, R4, -1);
        b.bne(R4, R0, "loop");
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn fast_forward_equivalence() {
        // The quiescent-cycle skip must be invisible: identical cycle
        // counts, commit counts, stall attribution and WIB traffic.
        let prog = streaming_misses();
        for cfg in [
            MachineConfig::base_8way(),
            MachineConfig::wib_2k(),
            MachineConfig::wib_pool(8, 256),
            // A tiny epoch places interval boundaries inside fast-forward
            // stretches: the skip must stop exactly on each boundary so
            // per-interval attribution matches the stepped run.
            MachineConfig::wib_2k().with_stats_epoch(64),
        ] {
            let epoch = cfg.stats_epoch;
            let mut fast = Processor::new(cfg.clone());
            fast.enable_cosim();
            let mut slow = Processor::new(cfg);
            slow.enable_cosim().disable_fast_forward();
            let limit = RunLimit::instructions(10_000);
            let a = fast.run_program(&prog, limit);
            let b = slow.run_program(&prog, limit);
            let key = |r: &RunResult| {
                (
                    r.stats.cycles,
                    r.stats.committed,
                    r.stats.dispatched,
                    r.stats.issued,
                    r.stats.wib_insertions,
                    r.stats.wib_extractions,
                    r.stats.stall_active_list,
                    r.stats.stall_issue_queue,
                    r.stats.stall_lsq,
                    r.stats.stall_regs,
                )
            };
            assert_eq!(key(&a), key(&b));
            assert_eq!(a.stats.cpi.total(), b.stats.cpi.total());
            let intervals = |r: &RunResult| {
                r.stats
                    .intervals
                    .iter()
                    .map(|s| {
                        (
                            s.cycle,
                            s.committed,
                            s.window_occupancy,
                            s.iq_occupancy,
                            s.wib_resident,
                            s.wib_columns_in_use,
                            s.outstanding_misses,
                        )
                    })
                    .collect::<Vec<_>>()
            };
            if epoch == 64 {
                assert!(!intervals(&a).is_empty());
            }
            assert_eq!(intervals(&a), intervals(&b));
        }
    }

    #[test]
    fn machine_check_clean_on_runtime_flag() {
        // The per-cycle machine check (census + every structure checker)
        // holds on a WIB-engaging workload without the `checked` feature.
        let prog = streaming_misses();
        for cfg in [
            MachineConfig::base_8way(),
            MachineConfig::wib_2k(),
            MachineConfig::wib_pool(8, 256),
        ] {
            let mut p = Processor::new(cfg);
            p.enable_cosim().enable_machine_check();
            let r = p.run_program(&prog, RunLimit::instructions(10_000));
            assert!(r.halted);
        }
    }
}
