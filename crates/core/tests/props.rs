//! Property tests on the core's standalone structures: load-store queue
//! forwarding against a byte-level reference, and WIB bookkeeping
//! against a set model.

use proptest::prelude::*;
use std::collections::HashSet;
use wib_core::lsq::{ForwardResult, LoadStoreQueue};
use wib_core::wib::Wib;
use wib_core::wib_pool::{PoolConfig, PoolWib};
use wib_core::{SelectionPolicy, WibOrganization};

// ---------------------------------------------------------------------
// LSQ forwarding vs. a byte-level reference
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum MemOp {
    Store { addr: u32, width: u32, data: u64 },
    Load { addr: u32, width: u32 },
}

fn arb_width() -> impl Strategy<Value = u32> {
    prop::sample::select(vec![1u32, 4, 8])
}

fn arb_ops() -> impl Strategy<Value = Vec<MemOp>> {
    prop::collection::vec(
        (0u32..64, arb_width(), any::<u64>(), any::<bool>()).prop_map(
            |(slot, width, data, is_store)| {
                let addr = 0x1000 + slot * 4; // overlapping little region
                if is_store {
                    MemOp::Store { addr, width, data }
                } else {
                    MemOp::Load { addr, width }
                }
            },
        ),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every `Forward` result must equal a byte-level replay of all older
    /// stores over background memory; `FromMemory` must mean no older
    /// in-queue store wrote any of the load's bytes.
    #[test]
    fn forwarding_matches_byte_level_reference(ops in arb_ops()) {
        let mut lsq = LoadStoreQueue::new(64, 64);
        // Reference memory: byte -> value written by the *youngest* older
        // store (None = untouched background).
        let mut shadow: Vec<(u64, u32, u32, u64)> = Vec::new(); // (seq, addr, width, data)
        for (i, op) in ops.iter().enumerate() {
            let seq = i as u64;
            match *op {
                MemOp::Store { addr, width, data } => {
                    lsq.push_store(seq, width);
                    lsq.set_store_addr(seq, addr);
                    lsq.set_store_data(seq, data);
                    shadow.push((seq, addr, width, data));
                }
                MemOp::Load { addr, width } => {
                    lsq.push_load(seq, width);
                    lsq.set_load_addr(seq, addr);
                    // Byte-level reference resolution.
                    let mut bytes: Vec<Option<u8>> = vec![None; width as usize];
                    for &(_, sa, sw, sd) in shadow.iter() {
                        for k in 0..width {
                            let a = addr + k;
                            if a >= sa && a < sa + sw {
                                bytes[k as usize] = Some((sd >> ((a - sa) * 8)) as u8);
                            }
                        }
                    }
                    match lsq.forward_for_load(seq, addr, width) {
                        ForwardResult::Forward(_, value) => {
                            // Full coverage by queue stores; value must match.
                            for (k, b) in bytes.iter().enumerate() {
                                let expected = b.expect("forward implies full coverage");
                                let got = (value >> (k * 8)) as u8;
                                prop_assert_eq!(got, expected, "byte {} of load @{:#x}", k, addr);
                            }
                        }
                        ForwardResult::FromMemory => {
                            prop_assert!(
                                bytes.iter().all(|b| b.is_none()),
                                "FromMemory but an older store overlaps"
                            );
                        }
                        ForwardResult::BlockedOn(s) => {
                            // Blocking store must actually overlap.
                            let blocker = shadow.iter().find(|&&(q, ..)| q == s);
                            prop_assert!(blocker.is_some());
                        }
                    }
                }
            }
        }
    }

    /// Squashing from any point leaves exactly the older entries.
    #[test]
    fn squash_is_a_clean_suffix_removal(
        n_stores in 1usize..20,
        n_loads in 1usize..20,
        cut in 0u64..40,
    ) {
        let mut lsq = LoadStoreQueue::new(64, 64);
        let mut seq = 0u64;
        for _ in 0..n_stores {
            lsq.push_store(seq, 4);
            seq += 2;
        }
        for _ in 0..n_loads {
            lsq.push_load(seq, 4);
            seq += 2;
        }
        lsq.squash_from(cut);
        prop_assert!(lsq.stores().all(|s| s.seq < cut));
        prop_assert!(lsq.loads().all(|l| l.seq < cut));
    }
}

// ---------------------------------------------------------------------
// WIB vs. a set model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum WibOp {
    AllocColumn,
    Insert { slot: usize },
    CompleteOldestColumn,
    Extract { budget: usize },
    SquashSlot { slot: usize },
}

fn arb_wib_ops() -> impl Strategy<Value = Vec<WibOp>> {
    prop::collection::vec(
        prop_oneof![
            Just(WibOp::AllocColumn),
            (0usize..64).prop_map(|slot| WibOp::Insert { slot }),
            Just(WibOp::CompleteOldestColumn),
            (1usize..8).prop_map(|budget| WibOp::Extract { budget }),
            (0usize..64).prop_map(|slot| WibOp::SquashSlot { slot }),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Model: the set of resident slots must track exactly; extraction
    /// only yields slots whose column completed; nothing is lost or
    /// duplicated.
    #[test]
    fn wib_tracks_a_reference_set_model(ops in arb_wib_ops()) {
        let mut wib = Wib::new(64, WibOrganization::Ideal, SelectionPolicy::ProgramOrder, 8);
        let mut open_cols: Vec<u16> = Vec::new(); // not yet completed
        let mut resident: HashSet<usize> = HashSet::new();
        let mut eligible: HashSet<usize> = HashSet::new();
        let mut slot_col: std::collections::HashMap<usize, u16> = Default::default();
        let mut next_seq = 0u64;
        let mut load_seq = 1_000_000u64;

        for op in ops {
            match op {
                WibOp::AllocColumn => {
                    load_seq += 1;
                    if let Some(c) = wib.allocate_column(load_seq) {
                        open_cols.push(c);
                    }
                }
                WibOp::Insert { slot } => {
                    if resident.contains(&slot) || open_cols.is_empty() {
                        continue;
                    }
                    let col = *open_cols.last().expect("nonempty");
                    next_seq += 1;
                    wib.insert(slot, next_seq, col);
                    resident.insert(slot);
                    slot_col.insert(slot, col);
                }
                WibOp::CompleteOldestColumn => {
                    if open_cols.is_empty() {
                        continue;
                    }
                    let col = open_cols.remove(0);
                    wib.column_completed(col);
                    for (&slot, &c) in &slot_col {
                        if c == col && resident.contains(&slot) {
                            eligible.insert(slot);
                        }
                    }
                }
                WibOp::Extract { budget } => {
                    let mut got = Vec::new();
                    wib.extract(0, budget, |_, slot| {
                        got.push(slot);
                        true
                    });
                    prop_assert!(got.len() <= budget);
                    for slot in got {
                        prop_assert!(
                            eligible.remove(&slot),
                            "extracted slot {} was not eligible", slot
                        );
                        resident.remove(&slot);
                        slot_col.remove(&slot);
                    }
                }
                WibOp::SquashSlot { slot } => {
                    wib.squash_slot(slot);
                    resident.remove(&slot);
                    eligible.remove(&slot);
                    slot_col.remove(&slot);
                }
            }
            prop_assert_eq!(wib.resident(), resident.len(), "resident count diverged");
        }
        // Drain: everything eligible must eventually come out.
        let mut drained = HashSet::new();
        loop {
            let mut got = Vec::new();
            wib.extract(0, 8, |_, slot| {
                got.push(slot);
                true
            });
            if got.is_empty() {
                break;
            }
            drained.extend(got);
        }
        prop_assert_eq!(&drained, &eligible, "drain mismatch");
    }

    /// The pool-of-blocks buffer tracks the same set model; insertions may
    /// be refused (pool exhaustion) but must never lose or duplicate
    /// entries, and blocks must all return to the free list.
    #[test]
    fn pool_wib_tracks_a_reference_set_model(ops in arb_wib_ops()) {
        let mut pool = PoolWib::new(PoolConfig { block_slots: 2, blocks: 8 });
        let total_blocks = pool.free_blocks();
        let mut open_cols: Vec<u16> = Vec::new();
        let mut resident: HashSet<usize> = HashSet::new();
        let mut eligible: HashSet<usize> = HashSet::new();
        let mut slot_col: std::collections::HashMap<usize, u16> = Default::default();
        let mut next_seq = 0u64;
        let mut load_seq = 1_000_000u64;

        for op in ops {
            match op {
                WibOp::AllocColumn => {
                    load_seq += 1;
                    let c = pool.allocate_column(load_seq).expect("chains are unbounded");
                    open_cols.push(c);
                }
                WibOp::Insert { slot } => {
                    if resident.contains(&slot) || open_cols.is_empty() {
                        continue;
                    }
                    let col = *open_cols.last().expect("nonempty");
                    next_seq += 1;
                    if pool.insert(slot, next_seq, col) {
                        resident.insert(slot);
                        slot_col.insert(slot, col);
                    }
                }
                WibOp::CompleteOldestColumn => {
                    if open_cols.is_empty() {
                        continue;
                    }
                    let col = open_cols.remove(0);
                    pool.column_completed(col);
                    for (&slot, &c) in &slot_col {
                        if c == col && resident.contains(&slot) {
                            eligible.insert(slot);
                        }
                    }
                }
                WibOp::Extract { budget } => {
                    let mut got = Vec::new();
                    pool.extract(budget, |_, slot| {
                        got.push(slot);
                        true
                    });
                    prop_assert!(got.len() <= budget);
                    for slot in got {
                        prop_assert!(
                            eligible.remove(&slot),
                            "extracted slot {} was not eligible", slot
                        );
                        resident.remove(&slot);
                        slot_col.remove(&slot);
                    }
                }
                WibOp::SquashSlot { slot } => {
                    pool.squash_slot(slot);
                    resident.remove(&slot);
                    eligible.remove(&slot);
                    slot_col.remove(&slot);
                }
            }
            prop_assert_eq!(pool.resident(), resident.len(), "resident count diverged");
        }
        loop {
            let mut got = Vec::new();
            pool.extract(8, |_, slot| {
                got.push(slot);
                true
            });
            if got.is_empty() {
                break;
            }
            for slot in got {
                prop_assert!(eligible.remove(&slot));
            }
        }
        prop_assert!(eligible.is_empty(), "eligible entries never drained");
        // Squash everything still parked; all blocks must come home.
        let parked: Vec<usize> = resident.iter().copied().collect();
        for slot in parked {
            pool.squash_slot(slot);
        }
        for c in open_cols {
            pool.column_completed(c);
        }
        prop_assert_eq!(pool.free_blocks(), total_blocks, "leaked blocks");
    }
}
