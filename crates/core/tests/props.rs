//! Randomized property tests on the core's standalone structures:
//! load-store queue forwarding against a byte-level reference, and WIB
//! bookkeeping against a set model. Fixed seeds keep the suite
//! deterministic and fully offline.

use std::collections::HashSet;
use wib_core::lsq::{ForwardResult, LoadStoreQueue};
use wib_core::wib::Wib;
use wib_core::wib_pool::{PoolConfig, PoolWib};
use wib_core::{SelectionPolicy, WibOrganization};
use wib_rng::StdRng;

// ---------------------------------------------------------------------
// LSQ forwarding vs. a byte-level reference
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum MemOp {
    Store { addr: u32, width: u32, data: u64 },
    Load { addr: u32, width: u32 },
}

fn random_ops(r: &mut StdRng) -> Vec<MemOp> {
    let n = r.random_range(1..40usize);
    (0..n)
        .map(|_| {
            let slot: u32 = r.random_range(0..64);
            let width = [1u32, 4, 8][r.random_range(0..3usize)];
            let addr = 0x1000 + slot * 4; // overlapping little region
            if r.random() {
                MemOp::Store {
                    addr,
                    width,
                    data: r.random(),
                }
            } else {
                MemOp::Load { addr, width }
            }
        })
        .collect()
}

/// Every `Forward` result must equal a byte-level replay of all older
/// stores over background memory; `FromMemory` must mean no older
/// in-queue store wrote any of the load's bytes.
#[test]
fn forwarding_matches_byte_level_reference() {
    let mut r = StdRng::seed_from_u64(0xc04e_0001);
    for _ in 0..256 {
        let ops = random_ops(&mut r);
        let mut lsq = LoadStoreQueue::new(64, 64);
        // Reference memory: byte -> value written by the *youngest* older
        // store (None = untouched background).
        let mut shadow: Vec<(u64, u32, u32, u64)> = Vec::new(); // (seq, addr, width, data)
        for (i, op) in ops.iter().enumerate() {
            let seq = i as u64;
            match *op {
                MemOp::Store { addr, width, data } => {
                    lsq.push_store(seq, width);
                    lsq.set_store_addr(seq, addr);
                    lsq.set_store_data(seq, data);
                    shadow.push((seq, addr, width, data));
                }
                MemOp::Load { addr, width } => {
                    lsq.push_load(seq, width);
                    lsq.set_load_addr(seq, addr);
                    // Byte-level reference resolution.
                    let mut bytes: Vec<Option<u8>> = vec![None; width as usize];
                    for &(_, sa, sw, sd) in shadow.iter() {
                        for k in 0..width {
                            let a = addr + k;
                            if a >= sa && a < sa + sw {
                                bytes[k as usize] = Some((sd >> ((a - sa) * 8)) as u8);
                            }
                        }
                    }
                    match lsq.forward_for_load(seq, addr, width) {
                        ForwardResult::Forward(_, value) => {
                            // Full coverage by queue stores; value must match.
                            for (k, b) in bytes.iter().enumerate() {
                                let expected = b.expect("forward implies full coverage");
                                let got = (value >> (k * 8)) as u8;
                                assert_eq!(got, expected, "byte {k} of load @{addr:#x}");
                            }
                        }
                        ForwardResult::FromMemory => {
                            assert!(
                                bytes.iter().all(|b| b.is_none()),
                                "FromMemory but an older store overlaps"
                            );
                        }
                        ForwardResult::BlockedOn(s) => {
                            // Blocking store must actually overlap.
                            let blocker = shadow.iter().find(|&&(q, ..)| q == s);
                            assert!(blocker.is_some());
                        }
                    }
                }
            }
        }
    }
}

/// Squashing from any point leaves exactly the older entries.
#[test]
fn squash_is_a_clean_suffix_removal() {
    let mut r = StdRng::seed_from_u64(0xc04e_0002);
    for _ in 0..256 {
        let n_stores = r.random_range(1..20usize);
        let n_loads = r.random_range(1..20usize);
        let cut: u64 = r.random_range(0..40);
        let mut lsq = LoadStoreQueue::new(64, 64);
        let mut seq = 0u64;
        for _ in 0..n_stores {
            lsq.push_store(seq, 4);
            seq += 2;
        }
        for _ in 0..n_loads {
            lsq.push_load(seq, 4);
            seq += 2;
        }
        lsq.squash_from(cut);
        assert!(lsq.stores().all(|s| s.seq < cut));
        assert!(lsq.loads().all(|l| l.seq < cut));
    }
}

// ---------------------------------------------------------------------
// WIB vs. a set model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum WibOp {
    AllocColumn,
    Insert { slot: usize },
    CompleteOldestColumn,
    Extract { budget: usize },
    SquashSlot { slot: usize },
}

fn random_wib_ops(r: &mut StdRng) -> Vec<WibOp> {
    let n = r.random_range(1..120usize);
    (0..n)
        .map(|_| match r.random_range(0..5u32) {
            0 => WibOp::AllocColumn,
            1 => WibOp::Insert {
                slot: r.random_range(0..64),
            },
            2 => WibOp::CompleteOldestColumn,
            3 => WibOp::Extract {
                budget: r.random_range(1..8),
            },
            _ => WibOp::SquashSlot {
                slot: r.random_range(0..64),
            },
        })
        .collect()
}

/// Model: the set of resident slots must track exactly; extraction only
/// yields slots whose column completed; nothing is lost or duplicated.
#[test]
fn wib_tracks_a_reference_set_model() {
    let mut r = StdRng::seed_from_u64(0xc04e_0003);
    for _ in 0..256 {
        let ops = random_wib_ops(&mut r);
        let mut wib = Wib::new(64, WibOrganization::Ideal, SelectionPolicy::ProgramOrder, 8);
        let mut open_cols: Vec<u16> = Vec::new(); // not yet completed
        let mut resident: HashSet<usize> = HashSet::new();
        let mut eligible: HashSet<usize> = HashSet::new();
        let mut slot_col: std::collections::HashMap<usize, u16> = Default::default();
        let mut next_seq = 0u64;
        let mut load_seq = 1_000_000u64;

        for op in ops {
            match op {
                WibOp::AllocColumn => {
                    load_seq += 1;
                    if let Some(c) = wib.allocate_column(load_seq) {
                        open_cols.push(c);
                    }
                }
                WibOp::Insert { slot } => {
                    if resident.contains(&slot) || open_cols.is_empty() {
                        continue;
                    }
                    let col = *open_cols.last().expect("nonempty");
                    next_seq += 1;
                    wib.insert(slot, next_seq, col);
                    resident.insert(slot);
                    slot_col.insert(slot, col);
                }
                WibOp::CompleteOldestColumn => {
                    if open_cols.is_empty() {
                        continue;
                    }
                    let col = open_cols.remove(0);
                    wib.column_completed(col);
                    for (&slot, &c) in &slot_col {
                        if c == col && resident.contains(&slot) {
                            eligible.insert(slot);
                        }
                    }
                }
                WibOp::Extract { budget } => {
                    let mut got = Vec::new();
                    wib.extract(0, budget, |_, slot| {
                        got.push(slot);
                        true
                    });
                    assert!(got.len() <= budget);
                    for slot in got {
                        assert!(
                            eligible.remove(&slot),
                            "extracted slot {slot} was not eligible"
                        );
                        resident.remove(&slot);
                        slot_col.remove(&slot);
                    }
                }
                WibOp::SquashSlot { slot } => {
                    wib.squash_slot(slot);
                    resident.remove(&slot);
                    eligible.remove(&slot);
                    slot_col.remove(&slot);
                }
            }
            assert_eq!(wib.resident(), resident.len(), "resident count diverged");
        }
        // Drain: everything eligible must eventually come out.
        let mut drained = HashSet::new();
        loop {
            let mut got = Vec::new();
            wib.extract(0, 8, |_, slot| {
                got.push(slot);
                true
            });
            if got.is_empty() {
                break;
            }
            drained.extend(got);
        }
        assert_eq!(&drained, &eligible, "drain mismatch");
    }
}

/// The pool-of-blocks buffer tracks the same set model; insertions may
/// be refused (pool exhaustion) but must never lose or duplicate
/// entries, and blocks must all return to the free list.
#[test]
fn pool_wib_tracks_a_reference_set_model() {
    let mut r = StdRng::seed_from_u64(0xc04e_0004);
    for _ in 0..256 {
        let ops = random_wib_ops(&mut r);
        let mut pool = PoolWib::new(PoolConfig {
            block_slots: 2,
            blocks: 8,
        });
        let total_blocks = pool.free_blocks();
        let mut open_cols: Vec<u16> = Vec::new();
        let mut resident: HashSet<usize> = HashSet::new();
        let mut eligible: HashSet<usize> = HashSet::new();
        let mut slot_col: std::collections::HashMap<usize, u16> = Default::default();
        let mut next_seq = 0u64;
        let mut load_seq = 1_000_000u64;

        for op in ops {
            match op {
                WibOp::AllocColumn => {
                    load_seq += 1;
                    let c = pool
                        .allocate_column(load_seq)
                        .expect("chains are unbounded");
                    open_cols.push(c);
                }
                WibOp::Insert { slot } => {
                    if resident.contains(&slot) || open_cols.is_empty() {
                        continue;
                    }
                    let col = *open_cols.last().expect("nonempty");
                    next_seq += 1;
                    if pool.insert(slot, next_seq, col) {
                        resident.insert(slot);
                        slot_col.insert(slot, col);
                    }
                }
                WibOp::CompleteOldestColumn => {
                    if open_cols.is_empty() {
                        continue;
                    }
                    let col = open_cols.remove(0);
                    pool.column_completed(col);
                    for (&slot, &c) in &slot_col {
                        if c == col && resident.contains(&slot) {
                            eligible.insert(slot);
                        }
                    }
                }
                WibOp::Extract { budget } => {
                    let mut got = Vec::new();
                    pool.extract(budget, |_, slot| {
                        got.push(slot);
                        true
                    });
                    assert!(got.len() <= budget);
                    for slot in got {
                        assert!(
                            eligible.remove(&slot),
                            "extracted slot {slot} was not eligible"
                        );
                        resident.remove(&slot);
                        slot_col.remove(&slot);
                    }
                }
                WibOp::SquashSlot { slot } => {
                    pool.squash_slot(slot);
                    resident.remove(&slot);
                    eligible.remove(&slot);
                    slot_col.remove(&slot);
                }
            }
            assert_eq!(pool.resident(), resident.len(), "resident count diverged");
        }
        loop {
            let mut got = Vec::new();
            pool.extract(8, |_, slot| {
                got.push(slot);
                true
            });
            if got.is_empty() {
                break;
            }
            for slot in got {
                assert!(eligible.remove(&slot));
            }
        }
        assert!(eligible.is_empty(), "eligible entries never drained");
        // Squash everything still parked; all blocks must come home.
        let parked: Vec<usize> = resident.iter().copied().collect();
        for slot in parked {
            pool.squash_slot(slot);
        }
        for c in open_cols {
            pool.column_completed(c);
        }
        assert_eq!(pool.free_blocks(), total_blocks, "leaked blocks");
    }
}
