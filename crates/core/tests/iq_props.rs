//! Property tests for the arena-backed issue queue: under long random
//! sequences of insert / satisfy / demote / remove, the queue must agree
//! exactly with a naive reference model (linear-scan vector + re-sorted
//! ready list) on membership, occupancy, per-operand status, and the
//! oldest-first ready order.
//!
//! This is the safety net for the slot-arena rewrite (free list,
//! open-addressing seq index with backward-shift deletion, intrusive
//! sorted ready list): any divergence in probe-chain repair or list
//! relinking shows up here long before it would corrupt a simulation.

use wib_core::iq::{IqEntry, IssueQueue, SrcStatus};
use wib_core::types::{PhysReg, SrcRef};
use wib_isa::reg::RegClass;
use wib_rng::StdRng;

/// Naive reference model of one entry (statuses only; readiness is "no
/// Pending operand", matching `IqEntry::is_satisfied`).
#[derive(Clone)]
struct RefEntry {
    srcs: [Option<(SrcRef, SrcStatus)>; 2],
}

impl RefEntry {
    fn satisfied(&self) -> bool {
        !self
            .srcs
            .iter()
            .flatten()
            .any(|(_, s)| *s == SrcStatus::Pending)
    }
}

/// Reference queue: unordered vector, O(n) everything.
struct RefModel {
    capacity: usize,
    entries: Vec<(u64, RefEntry)>,
}

impl RefModel {
    fn insert(&mut self, seq: u64, e: RefEntry) {
        assert!(self.entries.len() < self.capacity);
        self.entries.push((seq, e));
    }

    fn insert_overflow(&mut self, seq: u64, e: RefEntry) {
        assert!(self.entries.len() <= self.capacity);
        self.entries.push((seq, e));
    }

    fn satisfy(&mut self, seq: u64, preg: PhysReg, class: RegClass, status: SrcStatus) -> bool {
        let Some((_, e)) = self.entries.iter_mut().find(|(s, _)| *s == seq) else {
            return false;
        };
        let mut hit = false;
        for src in e.srcs.iter_mut().flatten() {
            if src.0.preg == preg && src.0.class == class && src.1 == SrcStatus::Pending {
                src.1 = status;
                hit = true;
            }
        }
        hit
    }

    fn demote(&mut self, seq: u64, preg: PhysReg, class: RegClass) {
        if let Some((_, e)) = self.entries.iter_mut().find(|(s, _)| *s == seq) {
            for src in e.srcs.iter_mut().flatten() {
                if src.0.preg == preg && src.0.class == class && src.1 != SrcStatus::Pending {
                    src.1 = SrcStatus::Pending;
                }
            }
        }
    }

    fn remove(&mut self, seq: u64) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(s, _)| *s != seq);
        self.entries.len() != before
    }

    fn ready_seqs(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.satisfied())
            .map(|(s, _)| *s)
            .collect();
        v.sort_unstable();
        v
    }
}

fn random_src(rng: &mut StdRng) -> (SrcRef, SrcStatus) {
    let class = if rng.random::<bool>() {
        RegClass::Int
    } else {
        RegClass::Fp
    };
    // A small register space so satisfy/demote frequently match.
    let preg = PhysReg(rng.random_range(0..8u16));
    let status = match rng.random_range(0..3u32) {
        0 => SrcStatus::Ready,
        1 => SrcStatus::Wait,
        _ => SrcStatus::Pending,
    };
    (SrcRef { class, preg }, status)
}

fn random_entry(rng: &mut StdRng) -> RefEntry {
    let a = rng.random::<bool>().then(|| random_src(rng));
    let b = rng.random::<bool>().then(|| random_src(rng));
    RefEntry { srcs: [a, b] }
}

/// Check every observable the queue exposes against the model.
fn check_agreement(q: &IssueQueue, m: &RefModel) {
    assert_eq!(q.len(), m.entries.len());
    assert_eq!(q.is_empty(), m.entries.is_empty());
    assert_eq!(
        q.free_slots(),
        m.capacity.saturating_sub(m.entries.len()),
        "free-slot accounting diverged"
    );
    assert_eq!(
        q.ready_seqs().collect::<Vec<_>>(),
        m.ready_seqs(),
        "ready order diverged"
    );
    for (seq, re) in &m.entries {
        assert!(q.contains(*seq));
        let e = q.entry(*seq).expect("entry present");
        assert_eq!(e.srcs, re.srcs, "operand statuses diverged for {seq}");
        assert_eq!(e.is_satisfied(), re.satisfied());
    }
}

/// One random workout: `ops` operations at the given capacity/seed.
fn workout(seed: u64, capacity: usize, ops: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = IssueQueue::new(capacity);
    let mut m = RefModel {
        capacity,
        entries: Vec::new(),
    };
    // Widely spaced, strictly increasing seqs stress the hash index more
    // than dense ones (long probe chains, large spans).
    let mut next_seq = 0u64;
    for _ in 0..ops {
        match rng.random_range(0..10u32) {
            // Insert (with an occasional overflow insert at capacity).
            0..=3 => {
                next_seq += rng.random_range(1..1_000_000u64);
                let e = random_entry(&mut rng);
                let iq = IqEntry::new(e.srcs);
                if m.entries.len() < capacity {
                    q.insert(next_seq, iq);
                    m.insert(next_seq, e);
                } else if m.entries.len() == capacity && rng.random::<bool>() {
                    q.insert_overflow(next_seq, iq);
                    m.insert_overflow(next_seq, e);
                }
            }
            // Satisfy a random live entry on a random operand key.
            4..=6 => {
                if m.entries.is_empty() {
                    continue;
                }
                let (seq, _) = m.entries[rng.random_range(0..m.entries.len())];
                let (sr, _) = random_src(&mut rng);
                let status = if rng.random::<bool>() {
                    SrcStatus::Ready
                } else {
                    SrcStatus::Wait
                };
                let got = q.satisfy(seq, sr.preg, sr.class, status);
                let want = m.satisfy(seq, sr.preg, sr.class, status);
                assert_eq!(got, want, "satisfy hit/miss diverged");
            }
            // Demote a random live entry.
            7 => {
                if m.entries.is_empty() {
                    continue;
                }
                let (seq, _) = m.entries[rng.random_range(0..m.entries.len())];
                let (sr, _) = random_src(&mut rng);
                q.demote(seq, sr.preg, sr.class);
                m.demote(seq, sr.preg, sr.class);
            }
            // Remove: a live entry usually, a random (absent) seq sometimes.
            _ => {
                let seq = if !m.entries.is_empty() && rng.random_range(0..8u32) > 0 {
                    m.entries[rng.random_range(0..m.entries.len())].0
                } else {
                    rng.random_range(0..next_seq.max(1))
                };
                assert_eq!(q.remove(seq).is_some(), m.remove(seq));
            }
        }
        check_agreement(&q, &m);
    }
}

#[test]
fn arena_matches_reference_model() {
    for seed in 0..6 {
        workout(seed, 16, 1_500);
    }
}

#[test]
fn arena_matches_reference_model_small_queue() {
    // Capacity 2 hammers the overflow slot and free-list recycling.
    for seed in 100..106 {
        workout(seed, 2, 1_000);
    }
}

#[test]
fn arena_matches_reference_model_large_queue() {
    // Capacity 128 grows long ready lists and probe chains.
    for seed in 200..203 {
        workout(seed, 128, 1_200);
    }
}

#[test]
fn dump_is_sorted_and_complete() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut q = IssueQueue::new(32);
    let mut seqs = Vec::new();
    let mut next = 0u64;
    for _ in 0..32 {
        next += rng.random_range(1..1_000u64);
        q.insert(next, IqEntry::new([Some(random_src(&mut rng)), None]));
        seqs.push(next);
    }
    let dumped: Vec<u64> = q.dump().iter().map(|(s, _)| *s).collect();
    assert_eq!(dumped, seqs, "dump() must list every entry oldest-first");
}
