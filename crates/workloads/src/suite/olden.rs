//! Olden stand-ins: linked data structures with dependent misses.
//!
//! The paper runs `em3d` (20,000 nodes, arity 10), `mst` (1024 nodes),
//! `perimeter` (4K x 4K image) and `treeadd` (20 levels). Each kernel here
//! reproduces the namesake's access skeleton: graph relaxation through
//! indirection arrays, hash-bucket chain walking, quadtree recursion and
//! binary-tree recursion. Node placement follows each original's
//! allocation pattern (Olden programs build their structures in one
//! recursive pass, so traversals have the locality of allocation order,
//! with misses on the long hops).

use crate::gen::{rng, Heap, STACK_TOP};
use crate::{Suite, Workload};
use wib_isa::asm::ProgramBuilder;
use wib_isa::reg::*;

/// `treeadd`: recursive sum over a binary tree of `2^levels - 1` nodes.
///
/// Nodes are 16 bytes (`left`, `right`, `value`, pad) and laid out in
/// depth-first allocation order, as Olden's recursive allocator produces:
/// left children are adjacent (often the same cache line) while right
/// children jump a whole subtree away and miss.
pub fn treeadd(levels: u32, repeats: u32) -> Workload {
    assert!((1..=22).contains(&levels));
    let n = (1u32 << levels) - 1;
    let mut heap = Heap::new();
    let region = heap.alloc(n * 16, 64);
    // Preorder (DFS) index of every heap-array node.
    let mut preorder = vec![0u32; n as usize];
    let mut counter = 0u32;
    let mut stack = vec![0u32];
    while let Some(i) = stack.pop() {
        preorder[i as usize] = counter;
        counter += 1;
        // Push right then left so the left subtree is visited first.
        if 2 * i + 2 < n {
            stack.push(2 * i + 2);
        }
        if 2 * i + 1 < n {
            stack.push(2 * i + 1);
        }
    }
    let addr = |i: u32| region + preorder[i as usize] * 16;

    // Heap-array tree: node i has children 2i+1, 2i+2.
    let mut data = vec![0u8; (n * 16) as usize];
    for i in 0..n {
        let base = (addr(i) - region) as usize;
        let left = if 2 * i + 1 < n { addr(2 * i + 1) } else { 0 };
        let right = if 2 * i + 2 < n { addr(2 * i + 2) } else { 0 };
        let value = 1u32;
        data[base..base + 4].copy_from_slice(&left.to_le_bytes());
        data[base + 4..base + 8].copy_from_slice(&right.to_le_bytes());
        data[base + 8..base + 12].copy_from_slice(&value.to_le_bytes());
    }

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(region, &data);
    b.li(SP, STACK_TOP);
    b.li(R20, repeats as i32 as u32);
    b.li(R21, 0); // checksum
    b.label("repeat");
    b.li(R1, addr(0));
    b.jal("sum");
    b.add(R21, R21, R2);
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "repeat");
    b.halt();

    // fn sum(r1: node) -> r2
    b.label("sum");
    b.bne(R1, R0, "sum_node");
    b.li(R2, 0);
    b.ret();
    b.label("sum_node");
    b.addi(SP, SP, -16);
    b.sw(RA, SP, 0);
    b.sw(R1, SP, 4);
    b.lw(R3, R1, 0); // left
    b.mv(R1, R3);
    b.jal("sum");
    b.sw(R2, SP, 8); // left sum
    b.lw(R1, SP, 4);
    b.lw(R3, R1, 4); // right
    b.mv(R1, R3);
    b.jal("sum");
    b.lw(R3, SP, 8);
    b.add(R2, R2, R3);
    b.lw(R1, SP, 4);
    b.lw(R4, R1, 8); // value
    b.add(R2, R2, R4);
    b.lw(RA, SP, 0);
    b.addi(SP, SP, 16);
    b.ret();

    Workload::new(
        "treeadd",
        Suite::Olden,
        b.finish().expect("treeadd assembles"),
    )
}

/// `perimeter`: recursive quadtree traversal.
///
/// Internal nodes hold four child pointers; leaves contribute their
/// stored border length. `max_nodes` bounds the randomly grown tree; the
/// node records are scattered through the region.
pub fn perimeter(max_nodes: u32, repeats: u32) -> Workload {
    assert!(max_nodes >= 5);
    let mut r = rng(0x9e81);
    // Grow a random quadtree breadth-first up to max_nodes.
    // children[i] == u32::MAX means "not yet decided".
    let mut children: Vec<[u32; 4]> = vec![[u32::MAX; 4]];
    let mut is_leaf: Vec<bool> = vec![false];
    let mut frontier = vec![0u32];
    while !frontier.is_empty() && (children.len() as u32) < max_nodes {
        let node = frontier.remove(0) as usize;
        for c in 0..4 {
            if (children.len() as u32) >= max_nodes {
                break;
            }
            let id = children.len() as u32;
            let leaf = r.random_range(0..100) < 35;
            children.push([u32::MAX; 4]);
            is_leaf.push(leaf);
            children[node][c] = id;
            if !leaf {
                frontier.push(id);
            }
        }
    }
    let n = children.len() as u32;
    // Undecided children become absent; childless internals become leaves.
    for i in 0..n as usize {
        if children[i].iter().all(|&c| c == u32::MAX) {
            is_leaf[i] = true;
        }
    }

    // Node record: [leaf_flag, c0, c1, c2, c3, value] = 24 bytes. Nodes
    // are laid out in allocation (BFS) order — Olden's perimeter allocates
    // the tree in one pass, so traversal has moderate locality.
    let mut heap = Heap::new();
    let region = heap.alloc(n * 24, 64);
    let addr = |i: u32| region + i * 24;
    let mut data = vec![0u8; (n * 24) as usize];
    for i in 0..n {
        let base = (addr(i) - region) as usize;
        let words: [u32; 6] = [
            is_leaf[i as usize] as u32,
            child_addr(&children, i, 0, &addr),
            child_addr(&children, i, 1, &addr),
            child_addr(&children, i, 2, &addr),
            child_addr(&children, i, 3, &addr),
            1 + (i % 4),
        ];
        for (w, word) in words.iter().enumerate() {
            data[base + 4 * w..base + 4 * w + 4].copy_from_slice(&word.to_le_bytes());
        }
    }

    fn child_addr(children: &[[u32; 4]], i: u32, c: usize, addr: &dyn Fn(u32) -> u32) -> u32 {
        match children[i as usize][c] {
            u32::MAX => 0,
            id => addr(id),
        }
    }

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(region, &data);
    b.li(SP, STACK_TOP);
    b.li(R20, repeats as i32 as u32);
    b.li(R21, 0);
    b.label("repeat");
    b.li(R1, addr(0));
    b.jal("peri");
    b.add(R21, R21, R2);
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "repeat");
    b.halt();

    // fn peri(r1: node) -> r2
    b.label("peri");
    b.bne(R1, R0, "peri_node");
    b.li(R2, 0);
    b.ret();
    b.label("peri_node");
    b.lw(R3, R1, 0); // leaf flag
    b.beq(R3, R0, "peri_internal");
    b.lw(R2, R1, 20); // leaf: border value
    b.ret();
    b.label("peri_internal");
    b.addi(SP, SP, -16);
    b.sw(RA, SP, 0);
    b.sw(R1, SP, 4);
    b.sw(R0, SP, 8); // accumulator
    for c in 0..4i32 {
        b.lw(R4, R1, 4 + 4 * c);
        b.mv(R1, R4);
        b.jal("peri");
        b.lw(R5, SP, 8);
        b.add(R5, R5, R2);
        b.sw(R5, SP, 8);
        b.lw(R1, SP, 4); // reload node
    }
    b.lw(R2, SP, 8);
    b.lw(RA, SP, 0);
    b.addi(SP, SP, 16);
    b.ret();

    Workload::new(
        "perimeter",
        Suite::Olden,
        b.finish().expect("perimeter assembles"),
    )
}

/// `mst`: per-vertex hash-table scan for the minimum-weight edge.
///
/// Every vertex owns `buckets` chains of edge records; the kernel walks
/// all chains of all vertices, `repeats` times. The table is several
/// times the L2, so hops are mostly misses — the dependent-chain access
/// pattern that keeps scaling past a 2K-entry window in the paper's
/// Figure 1.
pub fn mst(vertices: u32, buckets: u32, edges_per_vertex: u32, repeats: u32) -> Workload {
    let mut r = rng(0x357);
    let mut heap = Heap::new();
    let heads_base = heap.alloc(vertices * buckets * 4, 64);
    let total_edges = vertices * edges_per_vertex;
    // Two edges per cache line: hops usually miss but the table gets
    // some reuse across repeats (the paper's mst graph is only 1024
    // nodes).
    let edge_region = heap.alloc(total_edges * 32, 64);
    // Edges are laid out in allocation order: mst builds each vertex's
    // hash table in one pass, so chains are contiguous in memory.
    let edge_addr = |i: u32| edge_region + i * 32;

    let mut heads = vec![0u8; (vertices * buckets * 4) as usize];
    let mut edges = vec![0u8; (total_edges * 32) as usize];
    let mut next_edge = 0u32;
    for v in 0..vertices {
        // Distribute this vertex's edges over its buckets.
        let mut chain_head: Vec<u32> = vec![0; buckets as usize];
        for e in 0..edges_per_vertex {
            let bkt = r.random_range(0..buckets) as usize;
            let a = edge_addr(next_edge);
            next_edge += 1;
            let off = (a - edge_region) as usize;
            let weight: u32 = r.random_range(1..1_000_000);
            edges[off..off + 4].copy_from_slice(&(v * 1000 + e).to_le_bytes());
            edges[off + 4..off + 8].copy_from_slice(&weight.to_le_bytes());
            edges[off + 8..off + 12].copy_from_slice(&chain_head[bkt].to_le_bytes());
            chain_head[bkt] = a;
        }
        for (bkt, &head) in chain_head.iter().enumerate() {
            let off = ((v * buckets) as usize + bkt) * 4;
            heads[off..off + 4].copy_from_slice(&head.to_le_bytes());
        }
    }

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(heads_base, &heads);
    b.data_bytes(edge_region, &edges);
    b.li(R20, repeats as i32 as u32);
    b.li(R22, 0); // total
    b.label("repeat");
    b.li(R1, heads_base);
    b.li(R2, vertices);
    b.label("vertex");
    b.li(R3, 0x7fff_ffff); // min
    b.li(R4, buckets);
    b.label("bucket");
    b.lw(R5, R1, 0); // chain head
    b.label("chain");
    b.beq(R5, R0, "chain_done");
    b.lw(R6, R5, 4); // weight
    b.bge(R6, R3, "no_min");
    b.mv(R3, R6);
    b.label("no_min");
    b.lw(R5, R5, 8); // next (dependent load)
    b.j("chain");
    b.label("chain_done");
    b.addi(R1, R1, 4);
    b.addi(R4, R4, -1);
    b.bne(R4, R0, "bucket");
    b.add(R22, R22, R3);
    b.addi(R2, R2, -1);
    b.bne(R2, R0, "vertex");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "repeat");
    b.halt();

    Workload::new("mst", Suite::Olden, b.finish().expect("mst assembles"))
}

/// `em3d`: electromagnetic graph relaxation.
///
/// Each node's value is recomputed as a weighted sum of `arity` other
/// nodes' values reached through an indirection array — indirect loads
/// whose addresses arrive from memory, mixed FP compute, `iters` sweeps.
pub fn em3d(nodes: u32, arity: u32, iters: u32) -> Workload {
    assert!((1..=16).contains(&arity));
    let mut r = rng(0xe3d);
    // Record layout: value f64 @0; from_ptrs u32 x arity @8;
    // coeffs f64 x arity @ptr_end (8-aligned).
    let ptrs_bytes = 4 * arity;
    let coeff_off = 8 + ((ptrs_bytes + 7) & !7);
    let rec = coeff_off + 8 * arity;
    let mut heap = Heap::new();
    let region = heap.alloc(nodes * rec, 64);
    let addr = |i: u32| region + i * rec;

    let mut data = vec![0u8; (nodes * rec) as usize];
    for i in 0..nodes {
        let base = (addr(i) - region) as usize;
        data[base..base + 8].copy_from_slice(&r.random_range(0.5f64..1.5).to_bits().to_le_bytes());
        for k in 0..arity {
            // Most graph neighbours are physically nearby (em3d builds
            // its bipartite lists locally); a fraction are remote and
            // miss.
            let other = if r.random_range(0..8u32) == 0 {
                addr(r.random_range(0..nodes))
            } else {
                let lo = i.saturating_sub(8);
                let hi = (i + 8).min(nodes - 1);
                addr(r.random_range(lo..=hi))
            };
            let po = base + 8 + 4 * k as usize;
            data[po..po + 4].copy_from_slice(&other.to_le_bytes());
            let co = base + coeff_off as usize + 8 * k as usize;
            let coeff = 1.0 / (arity as f64) * r.random_range(0.25f64..0.75);
            data[co..co + 8].copy_from_slice(&coeff.to_bits().to_le_bytes());
        }
    }

    // Relaxation refines each block of nodes a few times before moving
    // on; only a block's first sweep streams from DRAM.
    const BLOCK: u32 = 512;
    const REFINE: u32 = 3;
    let block = BLOCK.min(nodes);
    assert!(
        nodes.is_multiple_of(block),
        "node count must be a multiple of the block"
    );
    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(region, &data);
    b.li(R20, iters as i32 as u32);
    b.label("iter");
    b.li(R1, region);
    b.li(R5, nodes / block);
    b.label("block");
    b.li(R6, REFINE as i32 as u32);
    b.label("refine");
    b.mv(R7, R1); // rewind to block start
    b.li(R2, block);
    b.label("node");
    // acc = 0.0 (f10); walk the from-list.
    b.cvtif(F10, R0);
    for k in 0..arity as i32 {
        b.lw(R3, R7, 8 + 4 * k); // pointer from memory
        b.fld(F1, R3, 0); // indirect value load
        b.fld(F2, R7, coeff_off as i32 + 8 * k);
        b.fmul(F3, F1, F2);
        b.fadd(F10, F10, F3);
    }
    b.fsd(F10, R7, 0);
    b.addi(R7, R7, rec as i32);
    b.addi(R2, R2, -1);
    b.bne(R2, R0, "node");
    b.addi(R6, R6, -1);
    b.bne(R6, R0, "refine");
    b.mv(R1, R7); // next block
    b.addi(R5, R5, -1);
    b.bne(R5, R0, "block");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "iter");
    b.halt();

    Workload::new("em3d", Suite::Olden, b.finish().expect("em3d assembles"))
}

/// Paper-scale instances (see module docs).
pub fn eval() -> Vec<Workload> {
    vec![
        em3d(20_480, 10, 4),
        mst(1024, 16, 32, 8),
        perimeter(120_000, 8),
        treeadd(18, 6),
    ]
}

/// Miniatures for fast co-simulated tests.
pub fn tiny() -> Vec<Workload> {
    vec![
        em3d(64, 4, 2),
        mst(16, 4, 8, 2),
        perimeter(64, 2),
        treeadd(6, 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wib_isa::interp::{Interpreter, StopReason};

    fn runs_to_halt(w: &Workload, budget: u64) -> Interpreter {
        let mut i = Interpreter::new(w.program());
        let stop = i.run(budget).expect("no invalid instructions");
        assert_eq!(
            stop,
            StopReason::Halted,
            "{} did not halt in {budget}",
            w.name()
        );
        i
    }

    #[test]
    fn treeadd_sums_all_nodes() {
        let w = treeadd(6, 2);
        let i = runs_to_halt(&w, 100_000);
        // 63 nodes, value 1 each, 2 traversals.
        assert_eq!(i.int_reg(R21), 2 * 63);
    }

    #[test]
    fn perimeter_accumulates_leaves() {
        let w = perimeter(64, 1);
        let i = runs_to_halt(&w, 200_000);
        assert!(i.int_reg(R21) > 0);
    }

    #[test]
    fn mst_finds_minima() {
        let w = mst(16, 4, 8, 1);
        let i = runs_to_halt(&w, 200_000);
        let total = i.int_reg(R22);
        // 16 vertices, each min weight in 1..1e6.
        assert!(total >= 16 && total < 16_000_000);
    }

    #[test]
    fn em3d_converges_numerically() {
        let w = em3d(64, 4, 2);
        runs_to_halt(&w, 200_000);
    }

    #[test]
    fn eval_instances_are_big() {
        // Spot check: eval treeadd covers >100k dynamic instructions.
        let w = treeadd(14, 1);
        let mut i = Interpreter::new(w.program());
        let stop = i.run(150_000).unwrap();
        assert_eq!(stop, StopReason::BudgetExhausted);
    }
}
