//! SPEC CINT2000 stand-ins: branchy integer kernels with moderate miss
//! ratios and working sets that straddle the 256 KB L2 — the regime where
//! the paper reports a +20% average WIB gain.

use crate::gen::{permutation, rng, Heap};
use crate::{Suite, Workload};
use wib_isa::asm::ProgramBuilder;
use wib_isa::reg::*;
use wib_rng::StdRng;

fn byte_block(r: &mut StdRng, n: u32) -> Vec<u8> {
    (0..n).map(|_| r.random()).collect()
}

/// `bzip2`: block compression front end — a sequential byte scan feeding
/// a frequency table, with a value-biased branch (taken ~78%) and a
/// second pass in reverse to defeat pure streaming.
pub fn bzip2(block_bytes: u32, iters: u32) -> Workload {
    let mut r = rng(0xb21b2);
    let mut heap = Heap::new();
    let block = heap.alloc(block_bytes, 64);
    let freq = heap.alloc(256 * 4, 64);

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(block, &byte_block(&mut r, block_bytes));
    b.li(R20, iters as i32 as u32);
    b.li(R21, 0); // checksum
    b.li(R9, 200); // branch threshold
    b.label("iter");
    b.li(R1, block);
    b.li(R5, block_bytes);
    b.li(R6, freq);
    b.label("scan");
    b.lbu(R2, R1, 0);
    b.slli(R3, R2, 2);
    b.add(R3, R3, R6);
    b.lw(R4, R3, 0); // freq[b]
    b.addi(R4, R4, 1);
    b.sw(R4, R3, 0);
    b.bge(R2, R9, "rare");
    b.add(R21, R21, R2); // common path (~78%)
    b.j("next");
    b.label("rare");
    b.xor(R21, R21, R2);
    b.slli(R21, R21, 1);
    b.label("next");
    b.addi(R1, R1, 1);
    b.addi(R5, R5, -1);
    b.bne(R5, R0, "scan");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "iter");
    b.halt();
    Workload::new("bzip2", Suite::Int, b.finish().expect("bzip2 assembles"))
}

/// `gcc`: IR-tree walking — records linked mostly sequentially with
/// occasional long jumps, a 4-way opcode dispatch via a compare chain,
/// and field updates.
pub fn gcc(records: u32, iters: u32) -> Workload {
    let mut r = rng(0x6cc);
    let rec = 32u32;
    let mut heap = Heap::new();
    let region = heap.alloc(records * rec, 64);
    let addr = |i: u32| region + (i % records) * rec;
    let mut data = vec![0u8; (records * rec) as usize];
    for i in 0..records {
        let base = (i * rec) as usize;
        // Mostly-sequential next pointer, random jump every ~8 records.
        let next = if r.random_range(0..8) == 0 {
            addr(r.random_range(0..records))
        } else {
            addr(i + 1)
        };
        let kind: u32 = r.random_range(0..4);
        let val: u32 = r.random_range(0..1000);
        data[base..base + 4].copy_from_slice(&next.to_le_bytes());
        data[base + 4..base + 8].copy_from_slice(&kind.to_le_bytes());
        data[base + 8..base + 12].copy_from_slice(&val.to_le_bytes());
    }

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(region, &data);
    b.li(R20, iters as i32 as u32);
    b.li(R21, 0);
    b.label("iter");
    b.li(R1, region);
    b.li(R5, records);
    b.label("walk");
    b.lw(R2, R1, 4); // kind
    b.lw(R3, R1, 8); // val
    b.li(R4, 1);
    b.beq(R2, R4, "kind1");
    b.li(R4, 2);
    b.beq(R2, R4, "kind2");
    b.li(R4, 3);
    b.beq(R2, R4, "kind3");
    b.add(R21, R21, R3); // kind 0
    b.j("advance");
    b.label("kind1");
    b.xor(R21, R21, R3);
    b.j("advance");
    b.label("kind2");
    b.sub(R21, R21, R3);
    b.j("advance");
    b.label("kind3");
    b.slli(R3, R3, 1);
    b.add(R21, R21, R3);
    b.sw(R21, R1, 12); // annotate the node
    b.label("advance");
    b.lw(R1, R1, 0); // next (dependent load)
    b.addi(R5, R5, -1);
    b.bne(R5, R0, "walk");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "iter");
    b.halt();
    Workload::new("gcc", Suite::Int, b.finish().expect("gcc assembles"))
}

/// `gzip`: LZ77 hash-chain matching — three-byte hash into a head table,
/// bounded chain walk through a `prev` array, then a head-table store
/// (store-to-load traffic exercising the store-wait predictor).
pub fn gzip(input_bytes: u32, iters: u32) -> Workload {
    let hash_entries = 16_384u32;
    let window = 65_536u32;
    let mut r = rng(0x6219);
    let mut heap = Heap::new();
    let input = heap.alloc(input_bytes, 64);
    let head = heap.alloc(hash_entries * 4, 64);
    let prev = heap.alloc(window * 4, 64);

    // Compressible-ish input: runs + noise.
    let mut buf = Vec::with_capacity(input_bytes as usize);
    while (buf.len() as u32) < input_bytes {
        let byte: u8 = r.random_range(0..32);
        let run = r.random_range(1..12usize);
        for _ in 0..run {
            buf.push(byte);
        }
    }
    buf.truncate(input_bytes as usize);

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(input, &buf);
    b.li(R20, iters as i32 as u32);
    b.li(R21, 0); // match count
    b.label("iter");
    b.li(R1, input);
    b.li(R5, input_bytes - 4);
    b.li(R6, head);
    b.li(R7, prev);
    b.li(R15, 0); // pos
    b.label("scan");
    // h = (b0<<6 ^ b1<<3 ^ b2) & (hash_entries-1)
    b.lbu(R2, R1, 0);
    b.lbu(R3, R1, 1);
    b.lbu(R4, R1, 2);
    b.slli(R2, R2, 6);
    b.slli(R3, R3, 3);
    b.xor(R2, R2, R3);
    b.xor(R2, R2, R4);
    b.slli(R2, R2, 2);
    b.andi(R2, R2, 0xfffc); // word-aligned index into the 64 KB head table
    b.add(R2, R2, R6);
    b.lw(R8, R2, 0); // chain head (position+1, 0 = empty)
    b.li(R9, 4); // chain depth limit
    b.label("chain");
    b.beq(R8, R0, "chain_done");
    b.addi(R10, R8, -1);
    // candidate byte = input[cand & (window-1)]
    b.andi(R10, R10, 0xffff);
    b.add(R11, R10, R1);
    b.sub(R11, R11, R15); // input + cand (approximately windowed)
    b.lbu(R12, R11, 0);
    b.lbu(R13, R1, 0);
    b.bne(R12, R13, "no_match");
    b.addi(R21, R21, 1);
    b.label("no_match");
    // follow prev chain
    b.slli(R10, R10, 2);
    b.add(R10, R10, R7);
    b.lw(R8, R10, 0);
    b.addi(R9, R9, -1);
    b.bne(R9, R0, "chain");
    b.label("chain_done");
    // prev[pos & wmask] = old head; head = pos + 1
    b.lw(R8, R2, 0);
    b.andi(R10, R15, 0xffff);
    b.slli(R10, R10, 2);
    b.add(R10, R10, R7);
    b.sw(R8, R10, 0);
    b.addi(R11, R15, 1);
    b.sw(R11, R2, 0);
    b.addi(R1, R1, 1);
    b.addi(R15, R15, 1);
    b.addi(R5, R5, -1);
    b.bne(R5, R0, "scan");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "iter");
    b.halt();
    Workload::new("gzip", Suite::Int, b.finish().expect("gzip assembles"))
}

/// `parser`: dictionary lookups — a pseudo-random word stream hashed into
/// bucket chains of scattered entries, with a key-compare branch per hop.
/// Most lookups hit a hot subset of the dictionary (real text reuses
/// words), keeping the L1 miss ratio in SPEC parser's low-percent range.
pub fn parser(dict_words: u32, lookups: u32) -> Workload {
    let buckets = 2_048u32;
    let mut r = rng(0x9a25e2);
    let mut heap = Heap::new();
    let heads = heap.alloc(buckets * 4, 64);
    let node_region = heap.alloc(dict_words * 64, 64);
    let perm = permutation(&mut r, dict_words as usize);
    let node_addr = |i: u32| node_region + perm[i as usize] * 64;

    let mut head_data = vec![0u8; (buckets * 4) as usize];
    let mut nodes = vec![0u8; (dict_words * 64) as usize];
    for i in 0..dict_words {
        let key = i.wrapping_mul(2654435761) & 0x00ff_ffff;
        let bkt = (key % buckets) as usize;
        let a = node_addr(i);
        let off = (a - node_region) as usize;
        let old_head =
            u32::from_le_bytes(head_data[bkt * 4..bkt * 4 + 4].try_into().expect("4 bytes"));
        nodes[off..off + 4].copy_from_slice(&key.to_le_bytes());
        nodes[off + 4..off + 8].copy_from_slice(&(i % 17).to_le_bytes());
        nodes[off + 8..off + 12].copy_from_slice(&old_head.to_le_bytes());
        head_data[bkt * 4..bkt * 4 + 4].copy_from_slice(&a.to_le_bytes());
    }

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(heads, &head_data);
    b.data_bytes(node_region, &nodes);
    b.li(R20, lookups as i32 as u32);
    b.li(R21, 0); // hits
    b.li(R15, 12345); // lcg state
    b.li(R14, 25173);
    let hot_mask = 255.min(dict_words - 1);
    b.label("lookup");
    // word index = lcg() % dict_words; key = hash(index).
    // 15 of 16 lookups draw from the hot subset of the dictionary.
    b.mul(R15, R15, R14);
    b.addi(R15, R15, 13849);
    b.srli(R2, R15, 8);
    b.li(R3, dict_words);
    b.andi(R5, R15, 15);
    b.li(R4, hot_mask);
    b.bne(R5, R0, "mask_ready");
    b.li(R4, dict_words.next_power_of_two() - 1);
    b.label("mask_ready");
    b.and(R2, R2, R4);
    b.blt(R2, R3, "idx_ok");
    b.sub(R2, R2, R3);
    b.label("idx_ok");
    b.li(R4, 2654435761u32);
    b.mul(R2, R2, R4);
    b.li(R4, 0x00ff_ffff);
    b.and(R2, R2, R4); // key
                       // bucket = key % buckets (power of two)
    b.li(R4, 2_048 - 1);
    b.and(R5, R2, R4);
    b.slli(R5, R5, 2);
    b.li(R6, heads);
    b.add(R5, R5, R6);
    b.lw(R7, R5, 0); // chain
    b.label("probe");
    b.beq(R7, R0, "done");
    b.lw(R8, R7, 0); // key (miss: scattered node)
    b.beq(R8, R2, "hit");
    b.lw(R7, R7, 8); // next
    b.j("probe");
    b.label("hit");
    b.lw(R9, R7, 4);
    b.add(R21, R21, R9);
    b.label("done");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "lookup");
    b.halt();
    Workload::new("parser", Suite::Int, b.finish().expect("parser assembles"))
}

/// `perlbmk`: a bytecode-interpreter loop — opcode fetch, jump-table
/// dispatch through `jalr` (indirect branches the BTB must predict), and
/// small handlers touching an operand stack.
pub fn perlbmk(ops: u32) -> Workload {
    let prog_len = 4_096u32;
    let mut r = rng(0x9e21);
    let mut heap = Heap::new();
    let bytecode = heap.alloc(prog_len, 64);
    let table = heap.alloc(8 * 4, 64);
    let stack = heap.alloc(4096, 64);

    let code: Vec<u8> = (0..prog_len).map(|_| r.random_range(0..8u8)).collect();

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(bytecode, &code);
    b.li(R20, ops as i32 as u32);
    b.li(R21, 0); // vm accumulator
    b.li(R16, stack);
    b.li(R15, 0); // vm pc
                  // The dispatch table is patched with the final handler addresses as
                  // initialized data after assembly (see below).
    b.li(R6, table);
    b.label("vm_loop");
    // op = bytecode[pc & (len-1)]
    b.li(R2, prog_len - 1);
    b.and(R2, R2, R15);
    b.li(R3, bytecode);
    b.add(R2, R2, R3);
    b.lbu(R4, R2, 0);
    b.slli(R4, R4, 2);
    b.add(R4, R4, R6);
    b.lw(R5, R4, 0); // handler address
    b.jalr(R9, R5); // indirect dispatch
    b.addi(R15, R15, 1);
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "vm_loop");
    b.halt();
    // Eight handlers, exactly 8 instructions (32 bytes) each, laid out
    // contiguously; each ends by returning through the link register the
    // dispatch `jalr` wrote.
    b.label("handlers");
    for h in 0..8u32 {
        // Each handler: 8 instructions, ends with jr r9.
        match h {
            0 => {
                b.addi(R21, R21, 1);
                b.nop();
                b.nop();
                b.nop();
                b.nop();
                b.nop();
                b.nop();
            }
            1 => {
                b.slli(R21, R21, 1);
                b.nop();
                b.nop();
                b.nop();
                b.nop();
                b.nop();
                b.nop();
            }
            2 => {
                b.xori(R21, R21, 0x5a5a);
                b.nop();
                b.nop();
                b.nop();
                b.nop();
                b.nop();
                b.nop();
            }
            3 => {
                // push acc
                b.andi(R10, R15, 1023);
                b.slli(R10, R10, 2);
                b.add(R10, R10, R16);
                b.sw(R21, R10, 0);
                b.nop();
                b.nop();
                b.nop();
            }
            4 => {
                // pop-ish: load from stack
                b.andi(R10, R15, 1023);
                b.slli(R10, R10, 2);
                b.add(R10, R10, R16);
                b.lw(R11, R10, 0);
                b.add(R21, R21, R11);
                b.nop();
                b.nop();
            }
            5 => {
                b.srli(R21, R21, 1);
                b.addi(R21, R21, 7);
                b.nop();
                b.nop();
                b.nop();
                b.nop();
                b.nop();
            }
            6 => {
                b.sub(R21, R0, R21);
                b.nop();
                b.nop();
                b.nop();
                b.nop();
                b.nop();
                b.nop();
            }
            _ => {
                b.ori(R21, R21, 1);
                b.nop();
                b.nop();
                b.nop();
                b.nop();
                b.nop();
                b.nop();
            }
        }
        b.jr(R9);
    }
    let mut prog = b.finish().expect("perlbmk assembles");
    // Fix up R18: the capture above set R18 = main_loop; handlers really
    // start at the "handlers" label. Patch the dispatch-table base rebuild
    // by storing handler addresses directly into the table's initialized
    // data instead (the assembler knows the final addresses now).
    let dis = prog.disassemble();
    let handler0 = dis
        .iter()
        .position(|(_, t)| t == "addi r21, r21, 1")
        .map(|i| dis[i].0)
        .expect("handler0 found");
    let mut table_bytes = Vec::new();
    for h in 0..8u32 {
        table_bytes.extend_from_slice(&(handler0 + 32 * h).to_le_bytes());
    }
    prog.data.push((table, table_bytes));
    Workload::new("perlbmk", Suite::Int, prog)
}

/// `vortex`: object-database accesses — random object headers, a payload
/// pointer dereference, and read-modify-write of payload fields.
pub fn vortex(objects: u32, accesses: u32) -> Workload {
    let mut r = rng(0x0b7e);
    let hdr = 32u32;
    let payload = 64u32;
    let mut heap = Heap::new();
    let hdr_region = heap.alloc(objects * hdr, 64);
    let pay_region = heap.alloc(objects * payload, 64);
    let perm = permutation(&mut r, objects as usize);

    let mut hdrs = vec![0u8; (objects * hdr) as usize];
    for i in 0..objects {
        let base = (i * hdr) as usize;
        let pay = pay_region + perm[i as usize] * payload;
        hdrs[base..base + 4].copy_from_slice(&pay.to_le_bytes());
        hdrs[base + 4..base + 8].copy_from_slice(&(i * 3).to_le_bytes());
    }

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(hdr_region, &hdrs);
    b.li(R20, accesses as i32 as u32);
    b.li(R21, 0);
    b.li(R15, 99991); // lcg
    b.li(R14, 20077);
    b.li(R13, objects.next_power_of_two() - 1);
    b.li(R12, objects);
    b.li(R11, hdr_region);
    b.label("access");
    // Object databases have hot working sets: 63 of 64 accesses touch a
    // cache-friendly subset, the rest roam the full store.
    b.mul(R15, R15, R14);
    b.addi(R15, R15, 12345);
    b.srli(R2, R15, 7);
    b.andi(R10, R15, 63);
    b.li(R9, 127.min(objects - 1));
    b.bne(R10, R0, "mask_ready");
    b.mv(R9, R13);
    b.label("mask_ready");
    b.and(R2, R2, R9);
    b.blt(R2, R12, "obj_ok");
    b.sub(R2, R2, R12);
    b.label("obj_ok");
    b.slli(R2, R2, 5); // * 32
    b.add(R2, R2, R11);
    b.lw(R3, R2, 0); // payload ptr (likely miss)
    b.lw(R4, R2, 4); // tag
    b.lw(R5, R3, 0); // payload word (dependent miss)
    b.add(R5, R5, R4);
    b.sw(R5, R3, 0); // write back
    b.lw(R6, R3, 8);
    b.add(R21, R21, R6);
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "access");
    b.halt();
    Workload::new("vortex", Suite::Int, b.finish().expect("vortex assembles"))
}

/// `vpr`: annealing-style placement — random grid cells, neighbor cost
/// evaluation, and a data-dependent swap branch.
pub fn vpr(grid_dim: u32, moves: u32) -> Workload {
    assert!(grid_dim.is_power_of_two());
    let cells = grid_dim * grid_dim;
    let mut r = rng(0x0b92);
    let mut heap = Heap::new();
    let grid = heap.alloc(cells * 4, 64);
    let mut data = Vec::with_capacity((cells * 4) as usize);
    for _ in 0..cells {
        data.extend_from_slice(&r.random_range(0..1000u32).to_le_bytes());
    }

    let row = (grid_dim * 4) as i32;
    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(grid, &data);
    b.li(R20, moves as i32 as u32);
    b.li(R21, 0);
    b.li(R15, 7919); // lcg
    b.li(R14, 24693);
    b.li(R13, (cells - 1) & !(grid_dim - 1) & 0x7fff_ffff); // interior mask helper
    b.li(R12, grid);
    b.li(R11, cells / 2);
    b.label("move");
    // A random cell a (R2) and a nearby partner b. As the annealing
    // temperature drops, moves concentrate in a hot region (15 of 16
    // moves), with occasional long-range perturbations.
    b.mul(R15, R15, R14);
    b.addi(R15, R15, 9377);
    b.srli(R2, R15, 5);
    b.andi(R5, R15, 15);
    b.li(R4, 8_191.min(cells - 1));
    b.bne(R5, R0, "range_ready");
    b.li(R4, cells - 1);
    b.label("range_ready");
    b.and(R2, R2, R4);
    b.li(R4, cells - 1);
    b.mul(R15, R15, R14);
    b.addi(R15, R15, 9377);
    b.srli(R3, R15, 9);
    b.andi(R3, R3, 127); // neighborhood radius
    b.add(R3, R3, R2);
    b.and(R3, R3, R4);
    b.slli(R2, R2, 2);
    b.add(R2, R2, R12);
    b.slli(R3, R3, 2);
    b.add(R3, R3, R12);
    // cost(a) = |v(a) - v(a+row)| + |v(a) - v(a+4)| (clamped offsets)
    b.lw(R5, R2, 0);
    b.lw(R6, R2, row.min(32000));
    b.lw(R7, R3, 0);
    b.lw(R8, R3, 4);
    b.sub(R9, R5, R6);
    b.sub(R10, R7, R8);
    b.add(R9, R9, R10);
    b.blt(R9, R0, "no_swap");
    // swap the two cells
    b.sw(R7, R2, 0);
    b.sw(R5, R3, 0);
    b.addi(R21, R21, 1);
    b.label("no_swap");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "move");
    b.halt();
    Workload::new("vpr", Suite::Int, b.finish().expect("vpr assembles"))
}

/// Paper-scale instances.
pub fn eval() -> Vec<Workload> {
    vec![
        bzip2(1 << 20, 2),       // 1 MB block
        gcc(65_536, 6),          // 2 MB of IR records
        gzip(262_144, 2),        // 256 KB input + tables
        parser(8_192, 200_000),  // 512 KB dictionary, hot core
        perlbmk(220_000),        // interpreter ops
        vortex(32_768, 120_000), // 3 MB database
        vpr(512, 120_000),       // 1 MB grid
    ]
}

/// Miniatures for fast co-simulated tests.
pub fn tiny() -> Vec<Workload> {
    vec![
        bzip2(2048, 2),
        gcc(256, 2),
        gzip(2048, 1),
        parser(256, 500),
        perlbmk(500),
        vortex(256, 500),
        vpr(16, 500),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wib_isa::interp::{Interpreter, StopReason};

    #[test]
    fn all_tiny_int_kernels_halt() {
        for w in tiny() {
            let mut i = Interpreter::new(w.program());
            let stop = i.run(2_000_000).expect("valid code");
            assert_eq!(stop, StopReason::Halted, "{} did not halt", w.name());
            assert!(i.retired() > 100, "{} did almost nothing", w.name());
        }
    }

    #[test]
    fn bzip2_counts_every_byte() {
        let w = bzip2(1024, 1);
        let mut i = Interpreter::new(w.program());
        i.run(1_000_000).unwrap();
        // Sum of all frequency counters equals the block length.
        use wib_isa::mem::Memory;
        let mut heap = Heap::new();
        let _block = heap.alloc(1024, 64);
        let freq = heap.alloc(256 * 4, 64);
        let total: u32 = (0..256).map(|k| i.memory().read_u32(freq + 4 * k)).sum();
        assert_eq!(total, 1024);
    }

    #[test]
    fn perlbmk_dispatch_table_points_at_handlers() {
        let w = perlbmk(50);
        let mut i = Interpreter::new(w.program());
        let stop = i.run(1_000_000).unwrap();
        assert_eq!(stop, StopReason::Halted);
    }

    #[test]
    fn vpr_performs_some_swaps() {
        let w = vpr(16, 500);
        let mut i = Interpreter::new(w.program());
        i.run(1_000_000).unwrap();
        let swaps = i.int_reg(R21);
        assert!(swaps > 0 && swaps <= 500);
    }
}
