//! SPEC CFP2000 stand-ins: streaming floating-point loops whose working
//! sets dwarf the 256 KB L2, giving the abundant memory-level parallelism
//! that makes the FP suite the WIB's best case (+84% average in the
//! paper).

use crate::gen::{rng, Heap};
use crate::{Suite, Workload};
use wib_isa::asm::ProgramBuilder;
use wib_isa::reg::*;
use wib_rng::StdRng;

fn f64_block(r: &mut StdRng, n: u32, lo: f64, hi: f64) -> Vec<u8> {
    let mut v = Vec::with_capacity(8 * n as usize);
    for _ in 0..n {
        v.extend_from_slice(&r.random_range(lo..hi).to_bits().to_le_bytes());
    }
    v
}

/// `swim`: shallow-water update. The velocity/output arrays are grid
/// planes that stay L2-resident across the sweep; the pressure array
/// streams from memory — a mix of short L2 stalls and true DRAM misses,
/// like the original's 1335x1335 grids against a 256 KB L2.
pub fn swim(n_elems: u32, iters: u32) -> Workload {
    // Resident plane: 4K f64 = 32 KB per array; three planes plus the
    // active pressure slice fit comfortably in the 256 KB L2.
    let resident = 4_096u32.min(n_elems);
    assert!(
        n_elems.is_multiple_of(resident),
        "stream must be a multiple of the plane"
    );
    let mut r = rng(0x5717);
    let mut heap = Heap::new();
    let u = heap.alloc(8 * resident, 64);
    let v = heap.alloc(8 * resident, 64);
    let unew = heap.alloc(8 * resident, 64);
    let p = heap.alloc(8 * (n_elems + 1), 64);

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(u, &f64_block(&mut r, resident, 0.0, 1.0));
    b.data_bytes(v, &f64_block(&mut r, resident, 0.0, 1.0));
    b.data_bytes(p, &f64_block(&mut r, n_elems + 1, 0.0, 1.0));
    b.data_f64(0x8000, &[0.25]); // tdts8 constant
    b.li(R10, 0x8000);
    b.fld(F9, R10, 0);
    // Each pressure slice is consumed `REUSE` times: the first pass
    // streams it from DRAM, later passes find it in the L2 — this sets
    // the DRAM-bound share of execution (and thus the WIB's headroom) to
    // roughly the original's.
    const REUSE: u32 = 6;
    b.li(R20, iters as i32 as u32);
    b.label("iter");
    b.li(R3, p);
    b.li(R6, n_elems / resident); // slices
    b.label("slice");
    b.li(R7, REUSE as i32 as u32);
    b.label("reuse");
    b.mv(R8, R3); // rewind to slice start
    b.li(R1, u);
    b.li(R2, v);
    b.li(R4, unew);
    b.li(R5, resident);
    b.label("cell");
    b.fld(F1, R1, 0); // u[i] (L2 resident)
    b.fld(F2, R2, 0); // v[i] (L2 resident)
    b.fld(F3, R8, 0); // p[i] (streams on the slice's first pass)
    b.fld(F4, R8, 8); // p[i+1]
    b.fsub(F5, F3, F4);
    b.fmul(F5, F5, F9);
    b.fadd(F6, F1, F2);
    b.fadd(F6, F6, F5);
    b.fsd(F6, R4, 0);
    b.addi(R1, R1, 8);
    b.addi(R2, R2, 8);
    b.addi(R8, R8, 8);
    b.addi(R4, R4, 8);
    b.addi(R5, R5, -1);
    b.bne(R5, R0, "cell");
    b.addi(R7, R7, -1);
    b.bne(R7, R0, "reuse");
    b.mv(R3, R8); // advance to the next slice
    b.addi(R6, R6, -1);
    b.bne(R6, R0, "slice");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "iter");
    b.halt();
    Workload::new("swim", Suite::Fp, b.finish().expect("swim assembles"))
}

/// `art`: neural-network F1 pass — long dot products over weight rows
/// streaming from memory into a serial accumulation chain. The paper's
/// most WIB-friendly benchmark (base IPC 0.42, speedup > 2).
pub fn art(vec_len: u32, f2_units: u32, iters: u32) -> Workload {
    let mut r = rng(0xa127);
    let mut heap = Heap::new();
    let x = heap.alloc(8 * vec_len, 64);
    // Weight rows are sparse (every other f64 slot used), doubling the
    // miss density of the stream — art's F1 layer has the worst cache
    // behaviour of the suite (paper: 35% L1D miss ratio, base IPC 0.42).
    let w = heap.alloc(16 * vec_len * f2_units, 64);

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(x, &f64_block(&mut r, vec_len, 0.0, 1.0));
    b.data_bytes(w, &f64_block(&mut r, 2 * vec_len * f2_units, -1.0, 1.0));
    b.li(R20, iters as i32 as u32);
    b.label("iter");
    b.li(R1, w);
    b.li(R6, f2_units);
    b.label("unit");
    b.li(R2, x);
    b.li(R5, vec_len / 2);
    b.cvtif(F10, R0); // acc0 = 0
    b.cvtif(F11, R0); // acc1 = 0 (two-way unrolled accumulation)
    b.label("dot");
    b.fld(F1, R1, 0); // weight (streaming miss)
    b.fld(F2, R2, 0); // input
    b.fmul(F3, F1, F2);
    b.fadd(F10, F10, F3);
    b.fld(F4, R1, 16); // next sparse weight slot
    b.fld(F5, R2, 8);
    b.fmul(F6, F4, F5);
    b.fadd(F11, F11, F6);
    b.addi(R1, R1, 32); // sparse row: every other slot, two per trip
    b.addi(R2, R2, 16);
    b.addi(R5, R5, -1);
    b.bne(R5, R0, "dot");
    b.fadd(F10, F10, F11);
    b.addi(R6, R6, -1);
    b.bne(R6, R0, "unit");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "iter");
    b.halt();
    Workload::new("art", Suite::Fp, b.finish().expect("art assembles"))
}

/// `mgrid`: 7-point stencil relaxation over a 3D grid. Each output sums
/// several input loads at plane/row strides — instructions wait on more
/// than one outstanding miss, triggering the WIB recycling the paper
/// analyzes for mgrid (section 4.1).
pub fn mgrid(dim: u32, iters: u32) -> Workload {
    let n = dim;
    let plane = n * n;
    let total = n * n * n;
    let mut r = rng(0x369d);
    let mut heap = Heap::new();
    let src = heap.alloc(8 * total, 64);
    let dst = heap.alloc(8 * total, 64);

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(src, &f64_block(&mut r, total, 0.0, 1.0));
    b.data_f64(0x8000, &[0.5, 0.125]);
    b.li(R10, 0x8000);
    b.fld(F8, R10, 0); // center weight
    b.fld(F9, R10, 8); // neighbor weight
    b.li(R20, iters as i32 as u32);
    let row = 8 * n as i32;
    let pl = 8 * plane as i32;
    // Interior cells only, processed in slices that are relaxed REUSE
    // times each (multigrid smooths each level several times; only the
    // first smoothing pass streams the planes from DRAM).
    const REUSE: u32 = 6;
    let raw_interior = total - 2 * plane - 2 * n - 2;
    let slice = 1_024u32.min(raw_interior);
    let interior = raw_interior / slice * slice;
    b.label("iter");
    b.li(R1, src + (plane + n + 1) * 8);
    b.li(R2, dst + (plane + n + 1) * 8);
    b.li(R6, interior / slice);
    b.label("slice");
    b.li(R7, REUSE as i32 as u32);
    b.label("reuse");
    b.mv(R3, R1); // rewind src to slice start
    b.mv(R4, R2); // rewind dst
    b.li(R5, slice);
    b.label("cell");
    b.fld(F1, R3, 0);
    b.fmul(F10, F1, F8);
    b.fld(F2, R3, -8);
    b.fld(F3, R3, 8);
    b.fadd(F2, F2, F3);
    b.fld(F4, R3, -row);
    b.fld(F5, R3, row);
    b.fadd(F4, F4, F5);
    b.fld(F6, R3, -pl); // far plane: distinct miss stream
    b.fld(F7, R3, pl); // far plane: distinct miss stream
    b.fadd(F6, F6, F7);
    b.fadd(F2, F2, F4);
    b.fadd(F2, F2, F6);
    b.fmul(F2, F2, F9);
    b.fadd(F10, F10, F2);
    b.fsd(F10, R4, 0);
    b.addi(R3, R3, 8);
    b.addi(R4, R4, 8);
    b.addi(R5, R5, -1);
    b.bne(R5, R0, "cell");
    b.addi(R7, R7, -1);
    b.bne(R7, R0, "reuse");
    b.mv(R1, R3); // next slice
    b.mv(R2, R4);
    b.addi(R6, R6, -1);
    b.bne(R6, R0, "slice");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "iter");
    b.halt();
    Workload::new("mgrid", Suite::Fp, b.finish().expect("mgrid assembles"))
}

/// `applu`: SSOR-style sweep with a divide per element. The working set
/// is L2-resident, so the kernel is bound by the two non-pipelined FP
/// dividers rather than by memory — SPEC applu's regime (base IPC 4.17 in
/// the paper, essentially no WIB gain).
pub fn applu(n_elems: u32, iters: u32) -> Workload {
    let mut r = rng(0xab91);
    let mut heap = Heap::new();
    let a = heap.alloc(8 * n_elems, 64);
    let c = heap.alloc(8 * n_elems, 64);
    let out = heap.alloc(8 * n_elems, 64);

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(a, &f64_block(&mut r, n_elems, 0.5, 2.0));
    b.data_bytes(c, &f64_block(&mut r, n_elems, 1.0, 3.0));
    b.data_f64(0x8000, &[1.5]);
    b.li(R10, 0x8000);
    b.fld(F9, R10, 0);
    b.li(R20, iters as i32 as u32);
    b.label("iter");
    b.li(R1, a);
    b.li(R2, c);
    b.li(R3, out);
    b.li(R5, n_elems);
    b.label("cell");
    b.fld(F1, R1, 0);
    b.fld(F2, R2, 0);
    b.fmul(F3, F1, F2);
    b.fadd(F4, F2, F9);
    b.fdiv(F5, F3, F4); // 12-cycle non-pipelined divide
    b.fsd(F5, R3, 0);
    b.addi(R1, R1, 8);
    b.addi(R2, R2, 8);
    b.addi(R3, R3, 8);
    b.addi(R5, R5, -1);
    b.bne(R5, R0, "cell");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "iter");
    b.halt();
    Workload::new("applu", Suite::Fp, b.finish().expect("applu assembles"))
}

/// `facerec`: correlation pass walking a 2D image in *column* order —
/// every access lands on a new cache line (and frequently a new page),
/// stressing the TLB the way facerec's gallery search does. Each column
/// is correlated against a few probe vectors, so revisits hit the L2.
pub fn facerec(rows: u32, cols: u32, iters: u32) -> Workload {
    const REUSE: u32 = 4;
    let total = rows * cols;
    let mut r = rng(0xface);
    let mut heap = Heap::new();
    let img = heap.alloc(8 * total, 64);
    let probe = heap.alloc(8 * rows, 64);

    let row_bytes = 8 * cols;
    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(img, &f64_block(&mut r, total, 0.0, 1.0));
    b.data_bytes(probe, &f64_block(&mut r, rows, 0.0, 1.0));
    b.li(R20, iters as i32 as u32);
    b.label("iter");
    b.li(R6, cols);
    b.li(R1, img);
    b.label("col");
    b.li(R8, REUSE as i32 as u32);
    b.label("reuse");
    b.mv(R2, R1); // walk down this column
    b.li(R3, probe);
    b.li(R5, rows);
    b.cvtif(F10, R0);
    b.label("row");
    b.fld(F1, R2, 0); // column stride: new line every access
    b.fld(F2, R3, 0);
    b.fmul(F3, F1, F2);
    b.fadd(F10, F10, F3);
    b.li(R7, row_bytes);
    b.add(R2, R2, R7);
    b.addi(R3, R3, 8);
    b.addi(R5, R5, -1);
    b.bne(R5, R0, "row");
    b.addi(R8, R8, -1);
    b.bne(R8, R0, "reuse");
    b.addi(R1, R1, 8); // next column
    b.addi(R6, R6, -1);
    b.bne(R6, R0, "col");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "iter");
    b.halt();
    Workload::new("facerec", Suite::Fp, b.finish().expect("facerec assembles"))
}

/// `galgel`: dense matrix-vector products from a Galerkin iteration. Each
/// matrix row participates in several inner products (the method reuses
/// the operator), so only the first visit to a row streams from DRAM.
pub fn galgel(n: u32, iters: u32) -> Workload {
    const REUSE: u32 = 8;
    let mut r = rng(0x9a19e1);
    let mut heap = Heap::new();
    let mat = heap.alloc(8 * n * n, 64);
    let x = heap.alloc(8 * n, 64);
    let y = heap.alloc(8 * n, 64);

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(mat, &f64_block(&mut r, n * n, -1.0, 1.0));
    b.data_bytes(x, &f64_block(&mut r, n, 0.0, 1.0));
    b.li(R20, iters as i32 as u32);
    b.label("iter");
    b.li(R1, mat);
    b.li(R4, y);
    b.li(R6, n);
    b.label("rowloop");
    b.li(R7, REUSE as i32 as u32);
    b.label("reuse");
    b.mv(R8, R1); // rewind to row start
    b.li(R2, x);
    b.li(R5, n);
    b.cvtif(F10, R0);
    b.label("dot");
    b.fld(F1, R8, 0);
    b.fld(F2, R2, 0);
    b.fmul(F3, F1, F2);
    b.fadd(F10, F10, F3);
    b.addi(R8, R8, 8);
    b.addi(R2, R2, 8);
    b.addi(R5, R5, -1);
    b.bne(R5, R0, "dot");
    b.addi(R7, R7, -1);
    b.bne(R7, R0, "reuse");
    b.mv(R1, R8); // next row
    b.fsd(F10, R4, 0);
    b.addi(R4, R4, 8);
    b.addi(R6, R6, -1);
    b.bne(R6, R0, "rowloop");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "iter");
    b.halt();
    Workload::new("galgel", Suite::Fp, b.finish().expect("galgel assembles"))
}

/// `wupwise`: complex AXPY (`z = a*x + y` over interleaved re/im pairs) —
/// the `x`/`z` operands stay L2-resident while `y` streams, and the high
/// arithmetic intensity (8 FP ops per pair) hides most of the stall time:
/// the smallest (but still real) WIB gain of the suite.
pub fn wupwise(n_pairs: u32, iters: u32) -> Workload {
    let resident = 512u32.min(n_pairs); // 8 KB slices of complex pairs
    assert!(n_pairs.is_multiple_of(resident));
    let mut r = rng(0x3373);
    let mut heap = Heap::new();
    let x = heap.alloc(16 * resident, 64);
    let z = heap.alloc(16 * resident, 64);
    let y = heap.alloc(16 * n_pairs, 64);

    let mut b = ProgramBuilder::new(0x1000);
    b.data_bytes(x, &f64_block(&mut r, 2 * resident, -1.0, 1.0));
    b.data_bytes(y, &f64_block(&mut r, 2 * n_pairs, -1.0, 1.0));
    b.data_f64(0x8000, &[0.8, 0.6]); // a = 0.8 + 0.6i
    b.li(R10, 0x8000);
    b.fld(F8, R10, 0); // a.re
    b.fld(F9, R10, 8); // a.im
    const REUSE: u32 = 16;
    b.li(R20, iters as i32 as u32);
    b.label("iter");
    b.li(R2, y);
    b.li(R6, n_pairs / resident);
    b.label("chunk");
    b.li(R7, REUSE as i32 as u32);
    b.label("reuse");
    b.mv(R9, R2); // rewind the y slice
    b.li(R1, x);
    b.li(R3, z);
    b.li(R5, resident);
    b.label("cell");
    b.fld(F1, R1, 0); // x.re
    b.fld(F2, R1, 8); // x.im
    b.fld(F3, R9, 0); // y.re (streams on first pass)
    b.fld(F4, R9, 8); // y.im
                      // z.re = a.re*x.re - a.im*x.im + y.re
    b.fmul(F5, F8, F1);
    b.fmul(F6, F9, F2);
    b.fsub(F5, F5, F6);
    b.fadd(F5, F5, F3);
    // z.im = a.re*x.im + a.im*x.re + y.im
    b.fmul(F6, F8, F2);
    b.fmul(F7, F9, F1);
    b.fadd(F6, F6, F7);
    b.fadd(F6, F6, F4);
    b.fsd(F5, R3, 0);
    b.fsd(F6, R3, 8);
    b.addi(R1, R1, 16);
    b.addi(R9, R9, 16);
    b.addi(R3, R3, 16);
    b.addi(R5, R5, -1);
    b.bne(R5, R0, "cell");
    b.addi(R7, R7, -1);
    b.bne(R7, R0, "reuse");
    b.mv(R2, R9); // next y slice
    b.addi(R6, R6, -1);
    b.bne(R6, R0, "chunk");
    b.addi(R20, R20, -1);
    b.bne(R20, R0, "iter");
    b.halt();
    Workload::new("wupwise", Suite::Fp, b.finish().expect("wupwise assembles"))
}

/// Paper-scale instances.
pub fn eval() -> Vec<Workload> {
    vec![
        applu(8_192, 120),    // L2-resident, divider-bound
        art(65_536, 4, 2),    // 8 MB sparse weights, serial chains
        facerec(512, 512, 8), // 2 MB image, column walks
        galgel(768, 3),       // 4.5 MB matrix
        mgrid(64, 4),         // two 2 MB grids, 7-point stencil
        swim(262_144, 4),     // resident planes + 2 MB pressure stream
        wupwise(131_072, 4),  // resident x/z + streaming y
    ]
}

/// Miniatures for fast co-simulated tests.
pub fn tiny() -> Vec<Workload> {
    vec![
        applu(128, 2),
        art(64, 2, 2),
        facerec(16, 16, 2),
        galgel(16, 2),
        mgrid(8, 2),
        swim(128, 2),
        wupwise(64, 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wib_isa::interp::{Interpreter, StopReason};

    #[test]
    fn all_tiny_fp_kernels_halt() {
        for w in tiny() {
            let mut i = Interpreter::new(w.program());
            let stop = i.run(500_000).expect("valid code");
            assert_eq!(stop, StopReason::Halted, "{} did not halt", w.name());
        }
    }

    #[test]
    fn galgel_matvec_matches_reference() {
        let n = 8u32;
        let w = galgel(n, 1);
        let mut i = Interpreter::new(w.program());
        i.run(100_000).unwrap();
        // Recompute in Rust from the same seed.
        let mut r = rng(0x9a19e1);
        let mat: Vec<f64> = (0..n * n).map(|_| r.random_range(-1.0..1.0)).collect();
        let x: Vec<f64> = (0..n).map(|_| r.random_range(0.0..1.0)).collect();
        let y0: f64 = (0..n as usize).map(|j| mat[j] * x[j]).sum();
        // y[0] lives right after mat and x in the heap.
        let mut heap = Heap::new();
        let _ = heap.alloc(8 * n * n, 64);
        let _ = heap.alloc(8 * n, 64);
        let y_addr = heap.alloc(8 * n, 64);
        use wib_isa::mem::Memory;
        let got = f64::from_bits(i.memory().read_u64(y_addr));
        assert!((got - y0).abs() < 1e-9, "got {got}, want {y0}");
    }
}
