//! Shared helpers for the kernel generators: a simulated-heap bump
//! allocator and deterministic pseudo-random data.

use wib_rng::StdRng;

/// Base of the simulated heap (code sits at 0x1000, stacks below
/// 0x0010_0000).
pub const HEAP_BASE: u32 = 0x0010_0000;

/// Top of the simulated stack region.
pub const STACK_TOP: u32 = 0x000f_0000;

/// A bump allocator over the simulated address space.
#[derive(Debug, Clone)]
pub struct Heap {
    next: u32,
}

impl Heap {
    /// Start allocating at [`HEAP_BASE`].
    pub fn new() -> Heap {
        Heap { next: HEAP_BASE }
    }

    /// Allocate `bytes` aligned to `align` (a power of two).
    pub fn alloc(&mut self, bytes: u32, align: u32) -> u32 {
        debug_assert!(align.is_power_of_two());
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + bytes;
        base
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> u32 {
        self.next - HEAP_BASE
    }
}

impl Default for Heap {
    fn default() -> Self {
        Heap::new()
    }
}

/// Deterministic RNG for data generation (fixed per-kernel seeds keep the
/// experiments reproducible run to run).
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random permutation of `0..n` (used to scatter linked structures in
/// memory the way long-running allocation does in the originals).
pub fn permutation(rng: &mut StdRng, n: usize) -> Vec<u32> {
    let mut v: Vec<u32> = (0..n as u32).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_alignment() {
        let mut h = Heap::new();
        let a = h.alloc(10, 8);
        assert_eq!(a % 8, 0);
        let b = h.alloc(4, 64);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
        assert!(h.used() > 0);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut r = rng(42);
        let p = permutation(&mut r, 100);
        let mut seen = vec![false; 100];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let a: u32 = rng(7).random();
        let b: u32 = rng(7).random();
        assert_eq!(a, b);
    }
}
