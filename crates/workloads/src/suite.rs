//! The three benchmark suites. Each submodule exposes one constructor per
//! kernel (parameterized by size) plus `eval()` / `tiny()` collections.

pub mod fp;
pub mod int;
pub mod olden;
