//! Synthetic stand-ins for the ISCA 2002 WIB paper's benchmarks.
//!
//! The paper evaluates SPEC CINT2000, SPEC CFP2000 and Olden binaries
//! compiled for Alpha. Those binaries (and the SPEC inputs) cannot be
//! redistributed, so this crate provides one synthetic kernel per
//! benchmark, each engineered to land in the same *memory-behaviour
//! regime* as its namesake (the property the WIB result actually depends
//! on): working-set size relative to the 32 KB L1 / 256 KB L2, dependent
//! vs. independent miss structure, branch predictability, and
//! integer/floating-point mix. See `DESIGN.md` for the substitution
//! rationale and per-kernel intent.
//!
//! - [`suite::int`]: `bzip2 gcc gzip parser perlbmk vortex vpr` — branchy
//!   integer code, moderate miss ratios.
//! - [`suite::fp`]: `applu art facerec galgel mgrid swim wupwise` —
//!   streaming loops with abundant memory-level parallelism.
//! - [`suite::olden`]: `em3d mst perimeter treeadd` — linked data
//!   structures with dependent (pointer-chasing) misses.
//!
//! Every kernel is parameterized by size; [`eval_suite`] returns the
//! paper-scale instances the experiment harnesses run, [`test_suite`]
//! returns miniatures for fast co-simulation testing.

pub mod gen;
pub mod suite;

use wib_isa::program::Program;

/// Which benchmark suite a workload models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CINT2000 stand-ins.
    Int,
    /// SPEC CFP2000 stand-ins.
    Fp,
    /// Olden stand-ins.
    Olden,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Int => write!(f, "SPEC INT"),
            Suite::Fp => write!(f, "SPEC FP"),
            Suite::Olden => write!(f, "Olden"),
        }
    }
}

/// A named, fully built benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    name: String,
    suite: Suite,
    program: Program,
}

impl Workload {
    /// Wrap a built program.
    pub fn new(name: impl Into<String>, suite: Suite, program: Program) -> Workload {
        Workload {
            name: name.into(),
            suite,
            program,
        }
    }

    /// Benchmark name (matches the paper's tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which suite this belongs to.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// Borrow the program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Clone the program out (convenience for runners that want
    /// ownership).
    pub fn build(&self) -> Program {
        self.program.clone()
    }
}

/// The full 18-kernel suite at evaluation scale (the sizes the experiment
/// harnesses use). Order matches the paper's tables: INT, FP, Olden.
pub fn eval_suite() -> Vec<Workload> {
    let mut v = Vec::new();
    v.extend(suite::int::eval());
    v.extend(suite::fp::eval());
    v.extend(suite::olden::eval());
    v
}

/// Miniature instances of all kernels for fast (co-simulated) testing.
pub fn test_suite() -> Vec<Workload> {
    let mut v = Vec::new();
    v.extend(suite::int::tiny());
    v.extend(suite::fp::tiny());
    v.extend(suite::olden::tiny());
    v
}

/// Aligned text table describing `workloads`: name, suite, static
/// instruction count, and initialized data bytes, with a totals row.
///
/// This is what `wib-sim workloads` prints and what the serving daemon
/// uses to validate submitted job names; the format is snapshot-tested
/// (`tests/goldens/workloads_table.txt`), so treat changes as
/// golden-file updates, not free-form tweaks.
pub fn table(workloads: &[Workload]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<10} {:>14} {:>12}\n",
        "benchmark", "suite", "instructions", "data bytes"
    ));
    let (mut insts, mut data) = (0u64, 0u64);
    for w in workloads {
        let p = w.program();
        insts += p.len() as u64;
        data += p.data_bytes() as u64;
        out.push_str(&format!(
            "{:<12} {:<10} {:>14} {:>12}\n",
            w.name(),
            w.suite().to_string(),
            p.len(),
            p.data_bytes()
        ));
    }
    out.push_str(&format!(
        "{:<12} {:<10} {:>14} {:>12}\n",
        format!("total ({})", workloads.len()),
        "",
        insts,
        data
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_composition() {
        let all = eval_suite();
        assert_eq!(all.len(), 18);
        assert_eq!(all.iter().filter(|w| w.suite() == Suite::Int).count(), 7);
        assert_eq!(all.iter().filter(|w| w.suite() == Suite::Fp).count(), 7);
        assert_eq!(all.iter().filter(|w| w.suite() == Suite::Olden).count(), 4);
        let names: Vec<&str> = all.iter().map(|w| w.name()).collect();
        for expected in [
            "bzip2",
            "gcc",
            "gzip",
            "parser",
            "perlbmk",
            "vortex",
            "vpr",
            "applu",
            "art",
            "facerec",
            "galgel",
            "mgrid",
            "swim",
            "wupwise",
            "em3d",
            "mst",
            "perimeter",
            "treeadd",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn tiny_suite_matches_names() {
        let tiny = test_suite();
        let full = eval_suite();
        assert_eq!(tiny.len(), full.len());
        for (t, f) in tiny.iter().zip(full.iter()) {
            assert_eq!(t.name(), f.name());
            assert_eq!(t.suite(), f.suite());
        }
    }

    #[test]
    fn table_lists_every_kernel_with_counts() {
        let suite = test_suite();
        let t = table(&suite);
        let lines: Vec<&str> = t.lines().collect();
        // Header + one row per kernel + totals.
        assert_eq!(lines.len(), suite.len() + 2);
        for w in &suite {
            assert!(
                lines.iter().any(|l| l.starts_with(w.name())),
                "missing row for {}",
                w.name()
            );
        }
        assert!(lines[0].contains("instructions"));
        assert!(lines.last().unwrap().starts_with("total (18)"));
    }

    #[test]
    fn programs_are_nonempty_and_loadable() {
        for w in test_suite() {
            assert!(!w.program().is_empty(), "{} has no code", w.name());
            let p = w.build();
            assert_eq!(p.code.len(), w.program().code.len());
        }
    }
}
