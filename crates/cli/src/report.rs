//! Result formatting for the CLI.

use wib_core::RunResult;

/// One-line run summary.
pub fn summary(name: &str, r: &RunResult, wall_seconds: f64) {
    println!(
        "{name}: {} instructions in {} cycles -> IPC {:.3}  ({})",
        r.stats.committed,
        r.stats.cycles,
        r.ipc(),
        if r.halted { "halted" } else { "limit reached" }
    );
    println!(
        "simulated at {:.2} M instructions/s of wall-clock",
        r.stats.committed as f64 / wall_seconds / 1e6
    );
}

/// Full statistics dump.
pub fn detail(r: &RunResult) {
    let s = &r.stats;
    println!("\nfront end:");
    println!("  fetched        {:>12}", s.fetched);
    println!("  dispatched     {:>12}", s.dispatched);
    println!("  issued         {:>12}", s.issued);
    println!("branches:");
    println!("  conditional    {:>12}", s.cond_branches);
    println!(
        "  dir mispredict {:>12}  ({:.2}% correct)",
        s.dir_mispredicts,
        100.0 * s.branch_dir_rate()
    );
    println!("  target mispred {:>12}", s.target_mispredicts);
    println!("  order replays  {:>12}", s.order_violations);
    println!("memory:");
    println!(
        "  loads/stores   {:>12} / {}",
        s.committed_loads, s.committed_stores
    );
    println!("  L1D miss ratio {:>11.2}%", 100.0 * s.mem.l1d_miss_ratio());
    println!(
        "  L2 local miss  {:>11.2}%",
        100.0 * s.mem.l2_local_miss_ratio()
    );
    println!("  MSHR merges    {:>12}", s.mem.mshr_merges);
    println!("window:");
    println!("  WIB insertions {:>12}", s.wib_insertions);
    println!("  WIB extractions{:>12}", s.wib_extractions);
    println!("  avg trips      {:>12.2}", s.wib_avg_insertions());
    println!("  max trips      {:>12}", s.wib_max_insertions_per_inst);
    println!("  vector dry     {:>12}", s.wib_column_exhausted);
    println!("  pool stalls    {:>12}", s.wib_pool_stalls);
    println!("  RF L2 reads    {:>12}", s.rf_l2_reads);
    println!("occupancy (sampled):");
    println!("  active list    {}", s.occupancy_window);
    println!("  issue queues   {}", s.occupancy_iq);
    println!("  WIB            {}", s.occupancy_wib);
    println!("stalls (dispatch-blocked cycles):");
    println!("  active list    {:>12}", s.stall_active_list);
    println!("  issue queue    {:>12}", s.stall_issue_queue);
    println!("  LSQ            {:>12}", s.stall_lsq);
    println!("  registers      {:>12}", s.stall_regs);
}

/// The CPI stack: every cycle attributed to one category.
pub fn cpi_stack(r: &RunResult) {
    println!(
        "\ncpi stack ({} cycles, CPI {:.4}):",
        r.stats.cycles,
        1.0 / r.ipc().max(f64::MIN_POSITIVE)
    );
    print!("{}", r.stats.cpi.display_with(r.stats.committed));
}

/// Side-by-side base vs WIB.
pub fn compare(base: &RunResult, wib: &RunResult) {
    println!("{:<22} {:>12} {:>12}", "", "base", "WIB");
    let row = |k: &str, a: String, b: String| println!("{k:<22} {a:>12} {b:>12}");
    row(
        "IPC",
        format!("{:.3}", base.ipc()),
        format!("{:.3}", wib.ipc()),
    );
    row(
        "cycles",
        base.stats.cycles.to_string(),
        wib.stats.cycles.to_string(),
    );
    row(
        "branch dir rate",
        format!("{:.3}", base.stats.branch_dir_rate()),
        format!("{:.3}", wib.stats.branch_dir_rate()),
    );
    row(
        "L1D miss ratio",
        format!("{:.3}", base.stats.mem.l1d_miss_ratio()),
        format!("{:.3}", wib.stats.mem.l1d_miss_ratio()),
    );
    row(
        "WIB insertions",
        base.stats.wib_insertions.to_string(),
        wib.stats.wib_insertions.to_string(),
    );
    println!("\nspeedup: {:.2}x", wib.ipc() / base.ipc());
}
