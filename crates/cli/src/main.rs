//! `wib-sim` — command-line front end for the WIB simulator.
//!
//! ```text
//! wib-sim list                          benchmarks and machine specs
//! wib-sim workloads                     suite table with instruction counts
//! wib-sim run <bench> [options]         simulate one benchmark
//! wib-sim compare <bench> [options]     base vs WIB side by side
//! wib-sim disasm <bench> [--limit N]    disassemble a kernel
//! wib-sim serve [options]               run the simulation daemon
//! wib-sim coord --backends a,b,...      run the sweep coordinator
//! wib-sim submit <bench[:spec]>...      send jobs to a daemon (or --local)
//! wib-sim watch / stats / shutdown      observe and control a daemon
//! wib-sim metrics / top                 scrape or live-view daemon telemetry
//! ```
//!
//! Every client command accepts `--coord H:P` to talk to a coordinator
//! instead of a single daemon — same protocol, cluster-wide semantics.

use std::process::ExitCode;
use wib_core::{Json, MachineConfig, Processor, RunLimit, RunResult, TextSink, WibOrganization};
use wib_workloads::{eval_suite, test_suite, Workload};

/// Line budget for `--events` logs (~60 bytes/line, so tens of MB).
const EVENT_LOG_MAX_LINES: u64 = 1_000_000;

mod args;
mod report;
mod top;

use args::{Args, ParseError};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e.wants_usage() {
                eprintln!();
                eprintln!("{}", usage());
            }
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:
  wib-sim list
  wib-sim workloads [--tiny]
  wib-sim run <bench> [--config <spec>] [--insts N] [--warmup N] [--tiny] [--cosim] [--stats]
                      [--cpi-stack] [--stats-json <path>] [--events <path>] [--epoch N]
  wib-sim compare <bench> [--insts N] [--warmup N] [--tiny]
  wib-sim disasm <bench> [--limit N] [--tiny]
  wib-sim trace <bench> [--config <spec>] [--limit N] [--tail] [--tiny]
  wib-sim exec <file.s> [--config <spec>] [--insts N] [--cosim] [--stats] [--cpi-stack]

simulation service (see docs/serve.md):
  wib-sim serve [--addr H:P] [--workers N] [--queue N] [--tiny] [--results-dir D]
                [--port-file F] [--insts N] [--warmup N] [--quiet]
  wib-sim coord --backends H:P,H:P,... [--addr H:P] [--replicas N] [--vnodes N]
                [--tiny] [--insts N] [--warmup N] [--port-file F] [--quiet]
  wib-sim submit <bench[:spec]>... [--addr H:P | --coord H:P | --local] [--config <spec>]
                 [--insts N] [--warmup N] [--deadline-ms N] [--retry N] [--out DIR]
                 [--tiny] [--progress]
  wib-sim watch [--addr H:P | --coord H:P]
  wib-sim stats [--addr H:P | --coord H:P]        (--coord prints the cluster view)
  wib-sim metrics [--addr H:P | --coord H:P]      (--coord merges every node)
  wib-sim top [--addr H:P | --coord H:P] [--interval-ms N] [--iters N] [--plain]
  wib-sim shutdown [--addr H:P | --coord H:P] [--now]

observability:
  --cpi-stack          print the commit-slot CPI stack (categories sum to cycles)
  --stats-json <path>  write the full statistics (CPI stack, interval series, ...) as JSON
  --events <path>      write a pipeview-style pipeline event log
  --epoch N            interval time-series sample period in cycles (default 10000)

machine specs for --config:
  base            the paper's Table 1 base machine (default)
  wib2k           32-entry issue queues + 2K-entry banked WIB
  wib:<N>         WIB machine with an N-entry window (128..2048)
  conv:<N>        conventional machine with an N-entry issue queue
  pool:<S>x<B>    pool-of-blocks WIB, B blocks of S slots
  nonbanked:<L>   non-banked WIB with an L-cycle access
plus the full canonical grammar, including the backend axis:
  base,backend=runahead[,rathresh=N]
  wib:w=<N>,backend=delay_track[,dtthresh=N]"
}

fn run(argv: &[String]) -> Result<(), ParseError> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "list" => cmd_list(),
        "workloads" => cmd_workloads(&args),
        "run" => cmd_run(&args),
        "compare" => cmd_compare(&args),
        "disasm" => cmd_disasm(&args),
        "trace" => cmd_trace(&args),
        "exec" => cmd_exec(&args),
        "serve" => cmd_serve(&args),
        "coord" => cmd_coord(&args),
        "submit" => cmd_submit(&args),
        "watch" => cmd_watch(&args),
        "stats" => cmd_serve_stats(&args),
        "metrics" => cmd_metrics(&args),
        "top" => cmd_top(&args),
        "shutdown" => cmd_shutdown(&args),
        other => Err(ParseError::new(format!("unknown command `{other}`"))),
    }
}

fn find_workload(name: &str, tiny: bool) -> Result<Workload, ParseError> {
    let pool = if tiny { test_suite() } else { eval_suite() };
    pool.into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| ParseError::new(format!("unknown benchmark `{name}` (try `wib-sim list`)")))
}

fn parse_config(spec: &str) -> Result<MachineConfig, ParseError> {
    // Shorthands first; anything they don't fully match falls through to
    // the canonical grammar (`wib:w=2048,backend=delay_track` starts with
    // `wib:` but is not a shorthand).
    if spec == "base" {
        return Ok(MachineConfig::base_8way());
    }
    if spec == "wib2k" {
        return Ok(MachineConfig::wib_2k());
    }
    if let Some(n) = spec.strip_prefix("wib:").and_then(|n| n.parse().ok()) {
        return Ok(MachineConfig::wib_sized(n));
    }
    if let Some(n) = spec.strip_prefix("conv:").and_then(|n| n.parse().ok()) {
        return Ok(MachineConfig::conventional(n));
    }
    if let Some((slots, blocks)) = spec
        .strip_prefix("pool:")
        .and_then(|rest| rest.split_once('x'))
        .and_then(|(s, b)| Some((s.parse().ok()?, b.parse().ok()?)))
    {
        return Ok(MachineConfig::wib_pool(slots, blocks));
    }
    if let Some(latency) = spec.strip_prefix("nonbanked:").and_then(|l| l.parse().ok()) {
        return Ok(
            MachineConfig::wib_2k().with_wib_organization(WibOrganization::NonBanked { latency })
        );
    }
    // Canonical grammar last: full specs like `base,backend=runahead` or
    // `wib:w=512,backend=delay_track,dtthresh=24`.
    MachineConfig::from_spec(spec).map_err(ParseError::new)
}

fn cmd_list() -> Result<(), ParseError> {
    println!("benchmarks (use --tiny for miniature test instances):");
    for w in eval_suite() {
        println!("  {:<10} [{}]", w.name(), w.suite());
    }
    println!(
        "\nmachine specs: base, wib2k, wib:<N>, conv:<N>, pool:<S>x<B>, nonbanked:<L>, \
         or any canonical spec (e.g. base,backend=runahead; \
         wib:w=2048,backend=delay_track)"
    );
    Ok(())
}

fn cmd_workloads(args: &Args) -> Result<(), ParseError> {
    let suite = if args.flag("tiny") {
        test_suite()
    } else {
        eval_suite()
    };
    print!("{}", wib_workloads::table(&suite));
    Ok(())
}

/// Default daemon address for `serve`/`submit`/`watch`/`stats`/`shutdown`.
const DEFAULT_ADDR: &str = "127.0.0.1:7431";

/// Default bind address for the coordinator (one below the daemon's, so
/// both run side by side on one host out of the box).
const DEFAULT_COORD_ADDR: &str = "127.0.0.1:7430";

fn addr_of(args: &Args) -> String {
    args.option("addr").unwrap_or_else(|| DEFAULT_ADDR.into())
}

/// Where a client command should connect: `--coord H:P` wins over
/// `--addr H:P` — the coordinator speaks the same protocol, so every
/// client path works against either.
fn target_addr(args: &Args) -> String {
    args.option("coord").unwrap_or_else(|| addr_of(args))
}

fn cmd_serve(args: &Args) -> Result<(), ParseError> {
    let mut opts = wib_serve::ServerOptions::default();
    opts.addr = addr_of(args);
    opts.workers = args.number("workers", 0)? as usize;
    opts.queue_capacity = args.number("queue", opts.queue_capacity as u64)? as usize;
    opts.tiny = args.flag("tiny");
    if let Some(dir) = args.option("results-dir") {
        opts.results_dir = Some(dir.into());
    }
    opts.default_insts = args.number("insts", opts.default_insts)?;
    opts.default_warmup = args.number("warmup", opts.default_warmup)?;
    opts.quiet = args.flag("quiet");
    if let Some(path) = args.option("port-file") {
        opts.port_file = Some(path.into());
    }
    wib_serve::server::run(opts).map_err(|e| ParseError::runtime(format!("serve: {e}")))
}

fn cmd_coord(args: &Args) -> Result<(), ParseError> {
    let backends: Vec<String> = args
        .option("backends")
        .map(|list| {
            list.split(',')
                .map(str::trim)
                .filter(|b| !b.is_empty())
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();
    if backends.is_empty() {
        return Err(ParseError::new(
            "coord needs --backends H:P,H:P,... (at least one backend daemon)",
        ));
    }
    let mut opts = wib_serve::CoordOptions::default();
    opts.addr = args
        .option("addr")
        .unwrap_or_else(|| DEFAULT_COORD_ADDR.into());
    opts.backends = backends;
    opts.replicas = args.number("replicas", opts.replicas as u64)? as usize;
    opts.vnodes = args.number("vnodes", opts.vnodes as u64)? as usize;
    opts.tiny = args.flag("tiny");
    opts.default_insts = args.number("insts", opts.default_insts)?;
    opts.default_warmup = args.number("warmup", opts.default_warmup)?;
    opts.quiet = args.flag("quiet");
    if let Some(path) = args.option("port-file") {
        opts.port_file = Some(path.into());
    }
    wib_serve::coord::run(opts).map_err(|e| ParseError::runtime(format!("coord: {e}")))
}

/// `--insts` / `--warmup` as optional overrides (absent means "let the
/// daemon's defaults decide").
fn optional_number(args: &Args, key: &str) -> Result<Option<u64>, ParseError> {
    match args.option(key) {
        None => Ok(None),
        Some(_) => Ok(Some(args.number(key, 0)?)),
    }
}

fn cmd_submit(args: &Args) -> Result<(), ParseError> {
    let default_spec = args.option("config").unwrap_or_else(|| "base".into());
    let jobs: Vec<wib_serve::JobRequest> = args
        .rest(1)
        .iter()
        .map(|item| {
            // `bench:spec` — the spec itself may contain `:` (wib:w=256),
            // so split at the first colon only.
            let (bench, spec) = match item.split_once(':') {
                Some((b, s)) => (b.to_string(), s.to_string()),
                None => (item.clone(), default_spec.clone()),
            };
            wib_serve::JobRequest {
                workload: bench,
                spec,
                insts: None,
                warmup: None,
                deadline_ms: None,
            }
        })
        .collect();
    if jobs.is_empty() {
        return Err(ParseError::new(
            "submit needs at least one <bench[:spec]> job",
        ));
    }
    let insts = optional_number(args, "insts")?;
    let warmup = optional_number(args, "warmup")?;
    let out = args.option("out").map(std::path::PathBuf::from);
    let progress = args.flag("progress");
    let outcomes = if args.flag("local") {
        wib_serve::client::run_local(
            &jobs,
            insts,
            warmup,
            args.flag("tiny"),
            out.as_deref(),
            progress,
        )
        .map_err(String::from)
    } else {
        let opts = wib_serve::SubmitOptions {
            insts,
            warmup,
            deadline_ms: optional_number(args, "deadline-ms")?,
            out,
            progress,
            retries: args.number("retry", 8)? as u32,
            ..wib_serve::SubmitOptions::default()
        };
        wib_serve::client::submit_with(&target_addr(args), &jobs, &opts).map_err(String::from)
    }
    .map_err(ParseError::runtime)?;
    let mut failures = 0;
    for o in &outcomes {
        match &o.status {
            wib_serve::JobStatus::Done { cached, result } => {
                let ipc = result
                    .get("ipc")
                    .map(|j| j.to_string())
                    .unwrap_or_else(|| "?".into());
                println!(
                    "{:<12} {:<24} done{}  ipc={ipc}  [{}]",
                    o.workload,
                    o.spec,
                    if *cached { " (cached)" } else { "" },
                    o.digest
                );
            }
            wib_serve::JobStatus::Error(msg) => {
                failures += 1;
                println!("{:<12} {:<24} ERROR: {msg}", o.workload, o.spec);
            }
            wib_serve::JobStatus::Cancelled => {
                failures += 1;
                println!("{:<12} {:<24} cancelled", o.workload, o.spec);
            }
            wib_serve::JobStatus::Rejected(reason) => {
                failures += 1;
                println!("{:<12} {:<24} rejected: {reason}", o.workload, o.spec);
            }
            wib_serve::JobStatus::Shed { retry_after_ms } => {
                failures += 1;
                println!(
                    "{:<12} {:<24} shed by overloaded server (retry budget exhausted; \
                     last hint {retry_after_ms}ms)",
                    o.workload, o.spec
                );
            }
        }
    }
    if failures > 0 {
        return Err(ParseError::runtime(format!(
            "{failures} of {} job(s) did not complete",
            outcomes.len()
        )));
    }
    Ok(())
}

fn cmd_watch(args: &Args) -> Result<(), ParseError> {
    let mut stdout = std::io::stdout();
    wib_serve::client::watch(&target_addr(args), &mut stdout).map_err(ParseError::runtime)
}

fn cmd_serve_stats(args: &Args) -> Result<(), ParseError> {
    // Against a coordinator, show the cluster-wide aggregated view;
    // against a daemon, its own snapshot.
    let doc = if args.option("coord").is_some() {
        wib_serve::client::cluster_stats(&target_addr(args)).map_err(ParseError::runtime)?
    } else {
        wib_serve::client::stats(&addr_of(args)).map_err(ParseError::runtime)?
    };
    print!("{}", doc.pretty());
    Ok(())
}

fn cmd_metrics(args: &Args) -> Result<(), ParseError> {
    let text = wib_serve::client::metrics(&target_addr(args)).map_err(ParseError::runtime)?;
    print!("{text}");
    Ok(())
}

fn cmd_top(args: &Args) -> Result<(), ParseError> {
    let interval_ms = args.number("interval-ms", 1000)?;
    let iters = optional_number(args, "iters")?;
    top::run(&target_addr(args), interval_ms, iters, args.flag("plain"))
        .map_err(ParseError::runtime)
}

fn cmd_shutdown(args: &Args) -> Result<(), ParseError> {
    let reply = wib_serve::client::shutdown(&target_addr(args), !args.flag("now"))
        .map_err(ParseError::runtime)?;
    println!("{reply}");
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), ParseError> {
    let bench = args.positional(1, "benchmark name")?;
    let workload = find_workload(&bench, args.flag("tiny"))?;
    let spec = args.option("config").unwrap_or_else(|| "base".into());
    let mut cfg = parse_config(&spec)?;
    if args.option("epoch").is_some() {
        let epoch = args.number("epoch", 0)?;
        if epoch == 0 {
            return Err(ParseError::new("--epoch must be at least 1 cycle"));
        }
        cfg = cfg.with_stats_epoch(epoch);
    }
    let mut processor = Processor::new(cfg);
    if args.flag("cosim") {
        processor.enable_cosim();
    }
    let insts = args.number("insts", 200_000)?;
    let warmup = args.number("warmup", 200_000)?;
    let limit = RunLimit::instructions(insts);
    let start = std::time::Instant::now();
    let result = match args.option("events") {
        Some(path) => {
            let mut sink = TextSink::new(EVENT_LOG_MAX_LINES);
            let r =
                processor.run_program_warmed_observed(workload.program(), warmup, limit, &mut sink);
            write_file(&path, &sink.into_text())?;
            r
        }
        None => processor.run_program_warmed(workload.program(), warmup, limit),
    };
    let wall = start.elapsed().as_secs_f64();
    report::summary(workload.name(), &result, wall);
    if args.flag("stats") {
        report::detail(&result);
    }
    if args.flag("cpi-stack") {
        report::cpi_stack(&result);
    }
    if let Some(path) = args.option("stats-json") {
        write_stats_json(&path, workload.name(), &spec, insts, warmup, &result, wall)?;
    }
    Ok(())
}

fn write_file(path: &str, contents: &str) -> Result<(), ParseError> {
    std::fs::write(path, contents)
        .map_err(|e| ParseError::new(format!("cannot write `{path}`: {e}")))
}

/// Compose and write the `wib-sim/run-v1` JSON document.
#[allow(clippy::too_many_arguments)]
fn write_stats_json(
    path: &str,
    bench: &str,
    spec: &str,
    insts: u64,
    warmup: u64,
    result: &RunResult,
    wall: f64,
) -> Result<(), ParseError> {
    let doc = Json::obj()
        .field("schema", "wib-sim/run-v1")
        .field("benchmark", bench)
        .field("config", spec)
        .field("insts", insts)
        .field("warmup", warmup)
        .field("halted", result.halted)
        .field("ipc", result.ipc())
        .field("wall_seconds", wall)
        .field(
            "sim_minsts_per_s",
            result.stats.committed as f64 / wall / 1e6,
        )
        .field("stats", result.stats.to_json());
    write_file(path, &doc.pretty())
}

fn cmd_compare(args: &Args) -> Result<(), ParseError> {
    let bench = args.positional(1, "benchmark name")?;
    let workload = find_workload(&bench, args.flag("tiny"))?;
    let insts = args.number("insts", 200_000)?;
    let warmup = args.number("warmup", 200_000)?;
    let limit = RunLimit::instructions(insts);
    println!(
        "{}: base vs WIB ({insts} instructions after {warmup} warm-up)\n",
        workload.name()
    );
    let base = Processor::new(MachineConfig::base_8way()).run_program_warmed(
        workload.program(),
        warmup,
        limit,
    );
    let wib = Processor::new(MachineConfig::wib_2k()).run_program_warmed(
        workload.program(),
        warmup,
        limit,
    );
    report::compare(&base, &wib);
    Ok(())
}

fn cmd_exec(args: &Args) -> Result<(), ParseError> {
    let path = args.positional(1, "assembly file")?;
    let source = std::fs::read_to_string(&path)
        .map_err(|e| ParseError::new(format!("cannot read `{path}`: {e}")))?;
    let program = wib_isa::text::parse_program(&source)
        .map_err(|e| ParseError::new(format!("{path}: {e}")))?;
    let spec = args.option("config").unwrap_or_else(|| "base".into());
    let cfg = parse_config(&spec)?;
    let mut processor = Processor::new(cfg);
    if args.flag("cosim") {
        processor.enable_cosim();
    }
    let insts = args.number("insts", 1_000_000)?;
    let start = std::time::Instant::now();
    let result = processor.run_program(&program, RunLimit::instructions(insts));
    let wall = start.elapsed().as_secs_f64();
    report::summary(&path, &result, wall);
    if args.flag("stats") {
        report::detail(&result);
    }
    if args.flag("cpi-stack") {
        report::cpi_stack(&result);
    }
    if let Some(out) = args.option("stats-json") {
        write_stats_json(&out, &path, &spec, insts, 0, &result, wall)?;
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), ParseError> {
    let bench = args.positional(1, "benchmark name")?;
    let workload = find_workload(&bench, args.flag("tiny"))?;
    let cfg = parse_config(&args.option("config").unwrap_or_else(|| "wib2k".into()))?;
    let limit = args.number("limit", 48)? as usize;
    let insts = args.number("insts", (limit as u64).max(1_000))?;
    let processor = Processor::new(cfg);
    let run_limit = RunLimit::instructions(insts);
    let (result, trace) = if args.flag("tail") {
        processor.run_program_traced_tail(workload.program(), run_limit, limit)
    } else {
        processor.run_program_traced(workload.program(), run_limit, limit)
    };
    println!(
        "{}: {} {} committed instructions (IPC {:.3}); columns are cycles:",
        workload.name(),
        if args.flag("tail") { "last" } else { "first" },
        trace.len(),
        result.ipc()
    );
    print!("{trace}");
    Ok(())
}

fn cmd_disasm(args: &Args) -> Result<(), ParseError> {
    let bench = args.positional(1, "benchmark name")?;
    let workload = find_workload(&bench, args.flag("tiny"))?;
    let limit = args.number("limit", 64)? as usize;
    let program = workload.program();
    println!(
        "{}: {} instructions, {} bytes of initialized data, entry {:#x}",
        workload.name(),
        program.len(),
        program.data_bytes(),
        program.entry
    );
    for (addr, text) in program.disassemble().into_iter().take(limit) {
        println!("  {addr:#010x}: {text}");
    }
    if program.len() > limit {
        println!("  ... ({} more; use --limit)", program.len() - limit);
    }
    Ok(())
}
