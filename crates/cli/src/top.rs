//! `wib-sim top` — a live terminal view of a running daemon.
//!
//! Polls the daemon's `metrics` op, parses the Prometheus text
//! exposition with [`wib_core::Exposition`], and renders a compact
//! dashboard: queue pressure, worker occupancy, job outcome counters,
//! cache effectiveness, latency percentiles, and the engine's
//! per-stage cycle attribution. `--plain` suppresses the ANSI
//! clear-screen so output can be piped or captured in tests, and
//! `--iters N` bounds the loop (the default is to poll forever).
//!
//! Latency percentiles come from log2-bucket histograms, so every
//! quantile is an upper bound ("p95 ≤ 4.1ms"), never an interpolated
//! guess. See `docs/observability.md`.

use wib_core::{Exposition, STAGE_NAMES};
use wib_serve::client;

/// Poll `addr` every `interval_ms` and render the dashboard; `iters`
/// bounds the number of frames (None = until interrupted).
///
/// # Errors
/// A scrape failure (daemon unreachable, protocol error) ends the loop
/// with a message; a daemon restart mid-loop surfaces the same way.
pub fn run(addr: &str, interval_ms: u64, iters: Option<u64>, plain: bool) -> Result<(), String> {
    let mut frame = 0u64;
    loop {
        let text = client::metrics(addr).map_err(|e| format!("metrics scrape failed: {e}"))?;
        let exp = Exposition::parse(&text);
        let view = render(addr, &exp);
        if plain {
            print!("{view}");
        } else {
            // Clear screen + home, then the frame.
            print!("\x1b[2J\x1b[H{view}");
        }
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        frame += 1;
        if let Some(max) = iters {
            if frame >= max {
                return Ok(());
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(1)));
    }
}

/// One dashboard frame from a parsed exposition.
fn render(addr: &str, exp: &Exposition) -> String {
    let v = |name: &str| exp.value(name).unwrap_or(0.0);
    let mut out = String::new();
    let uptime_s = v("wib_serve_uptime_ms") / 1000.0;
    out.push_str(&format!("wib-serve @ {addr}   up {uptime_s:.1}s\n\n"));

    // Queue and workers.
    let depth = v("wib_serve_queue_depth");
    let cap = v("wib_serve_queue_capacity");
    let busy = v("wib_serve_busy_workers");
    let workers = v("wib_serve_workers");
    out.push_str(&format!(
        "queue   {depth:>6.0} / {cap:.0}{}\n",
        bar(depth, cap)
    ));
    out.push_str(&format!(
        "workers {busy:>6.0} / {workers:.0} busy{}   watchers {:.0}   restarts {:.0}\n\n",
        bar(busy, workers),
        v("wib_serve_watchers"),
        v("wib_serve_worker_restarts_total"),
    ));

    // Job outcome counters.
    out.push_str(&format!(
        "jobs    submitted {:.0}  done {:.0}  failed {:.0}  cancelled {:.0}  \
         shed {:.0}  panics {:.0}  deadline {:.0}\n",
        v("wib_serve_jobs_submitted_total"),
        v("wib_serve_jobs_completed_total"),
        v("wib_serve_jobs_failed_total"),
        v("wib_serve_jobs_cancelled_total"),
        v("wib_serve_jobs_shed_total"),
        v("wib_serve_job_panics_total"),
        v("wib_serve_deadline_expirations_total"),
    ));

    // Cache effectiveness.
    let hits = v("wib_serve_cache_hits_total");
    let misses = v("wib_serve_cache_misses_total");
    let lookups = hits + misses;
    let rate = if lookups > 0.0 {
        100.0 * hits / lookups
    } else {
        0.0
    };
    out.push_str(&format!(
        "cache   {rate:.1}% hit ({hits:.0}/{lookups:.0})  entries {:.0}  \
         scavenged {:.0}  rejected {:.0}  persist-failures {:.0}\n\n",
        v("wib_serve_cache_entries"),
        v("wib_serve_cache_scavenged_total"),
        v("wib_serve_cache_rejected_total"),
        v("wib_serve_cache_persist_failures_total"),
    ));

    // Latency percentiles (log2 buckets: quantiles are upper bounds).
    out.push_str("latency            p50        p95        p99      count\n");
    for (label, name) in [
        ("queue wait", "wib_serve_queue_wait_us"),
        ("run time  ", "wib_serve_run_us"),
        ("cache hit ", "wib_serve_cache_hit_us"),
        ("end-to-end", "wib_serve_job_us"),
    ] {
        match exp.histogram(name) {
            Some(h) if h.count > 0 => out.push_str(&format!(
                "  {label}  {:>9} {:>10} {:>10} {:>10}\n",
                fmt_us(h.quantile(0.50)),
                fmt_us(h.quantile(0.95)),
                fmt_us(h.quantile(0.99)),
                h.count,
            )),
            _ => out.push_str(&format!(
                "  {label}          -          -          -          0\n"
            )),
        }
    }

    out.push_str(&render_stages(exp));
    out
}

/// Engine per-stage cycle attribution (sampled; shares of sampled time).
fn render_stages(exp: &Exposition) -> String {
    let total: f64 = STAGE_NAMES
        .iter()
        .filter_map(|s| exp.value_labeled("wib_engine_stage_ns_total", &[("stage", s)]))
        .sum();
    if total <= 0.0 {
        return String::new();
    }
    let mut out = String::from("\nengine  ");
    for stage in STAGE_NAMES {
        let ns = exp
            .value_labeled("wib_engine_stage_ns_total", &[("stage", stage)])
            .unwrap_or(0.0);
        out.push_str(&format!("{stage} {:.0}%  ", 100.0 * ns / total));
    }
    out.push_str(&format!(
        "({:.0} cycles sampled)\n",
        exp.value("wib_engine_profiled_cycles_total").unwrap_or(0.0)
    ));
    out
}

/// A microsecond value scaled to a readable unit.
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("≤{:.1}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("≤{:.1}ms", us as f64 / 1e3)
    } else {
        format!("≤{us}us")
    }
}

/// A 10-cell occupancy bar, or nothing when the denominator is zero.
fn bar(n: f64, of: f64) -> String {
    if of <= 0.0 {
        return String::new();
    }
    let filled = ((n / of) * 10.0).round().min(10.0) as usize;
    format!("  [{}{}]", "#".repeat(filled), ".".repeat(10 - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A frame renders from a registry-produced exposition without
    /// touching the network.
    #[test]
    fn renders_a_frame_from_a_registry() {
        let reg = wib_core::Registry::new();
        reg.gauge("wib_serve_queue_depth", "d").set(3);
        reg.gauge("wib_serve_queue_capacity", "c").set(8);
        reg.gauge("wib_serve_busy_workers", "b").set(1);
        reg.gauge("wib_serve_workers", "w").set(2);
        reg.counter("wib_serve_cache_hits_total", "h").add(3);
        reg.counter("wib_serve_cache_misses_total", "m").inc();
        let h = reg.histogram("wib_serve_run_us", "r");
        h.observe(100);
        h.observe(3_000);
        let exp = Exposition::parse(&reg.render());
        let frame = render("127.0.0.1:0", &exp);
        assert!(frame.contains("queue        3 / 8"), "queue line: {frame}");
        assert!(frame.contains("75.0% hit (3/4)"), "cache line: {frame}");
        assert!(frame.contains("run time"), "latency table: {frame}");
        // 3000us lands in the ≤4096us bucket → p95 renders in ms.
        assert!(frame.contains("≤4.1ms"), "p95 bound: {frame}");
    }

    #[test]
    fn empty_exposition_renders_dashes() {
        let frame = render("x", &Exposition::parse(""));
        assert!(frame.contains("-          -"), "{frame}");
        assert!(!frame.contains("engine"), "no stage line without data");
    }

    #[test]
    fn formats_microseconds_across_units() {
        assert_eq!(fmt_us(512), "≤512us");
        assert_eq!(fmt_us(4_096), "≤4.1ms");
        assert_eq!(fmt_us(2_000_000), "≤2.0s");
    }
}
