//! Minimal argument parsing: positionals plus `--flag` / `--key value`.

use std::collections::HashMap;
use std::fmt;

/// A command failure. Argument mistakes are reported with the usage
/// text; runtime failures (daemon unreachable, jobs failed) are not —
/// the user's invocation was fine.
#[derive(Debug)]
pub struct ParseError {
    msg: String,
    show_usage: bool,
}

impl ParseError {
    /// An argument-level mistake (prints usage).
    pub fn new(msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            show_usage: true,
        }
    }

    /// A failure of the requested operation itself (no usage text).
    pub fn runtime(msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            show_usage: false,
        }
    }

    /// Whether the error should be followed by the usage text.
    pub fn wants_usage(&self) -> bool {
        self.show_usage
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parsed command line.
#[derive(Debug, Default)]
pub struct Args {
    /// First positional (the subcommand).
    pub command: String,
    positionals: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

const FLAGS: &[&str] = &[
    "tiny",
    "cosim",
    "stats",
    "cpi-stack",
    "tail",
    "local",
    "now",
    "quiet",
    "progress",
    "plain",
];
const OPTIONS: &[&str] = &[
    "config",
    "insts",
    "warmup",
    "limit",
    "stats-json",
    "events",
    "epoch",
    "addr",
    "workers",
    "queue",
    "port-file",
    "out",
    "results-dir",
    "deadline-ms",
    "retry",
    "interval-ms",
    "iters",
    "coord",
    "backends",
    "replicas",
    "vnodes",
];

impl Args {
    /// Parse `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Args, ParseError> {
        let mut args = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if FLAGS.contains(&name) {
                    args.flags.push(name.to_string());
                } else if OPTIONS.contains(&name) {
                    let v = it
                        .next()
                        .ok_or_else(|| ParseError::new(format!("--{name} needs a value")))?;
                    args.options.insert(name.to_string(), v.clone());
                } else {
                    return Err(ParseError::new(format!("unknown option --{name}")));
                }
            } else {
                args.positionals.push(a.clone());
            }
        }
        args.command = args
            .positionals
            .first()
            .cloned()
            .ok_or_else(|| ParseError::new("missing command"))?;
        Ok(args)
    }

    /// Positional argument `i` (0 = command).
    pub fn positional(&self, i: usize, what: &str) -> Result<String, ParseError> {
        self.positionals
            .get(i)
            .cloned()
            .ok_or_else(|| ParseError::new(format!("missing {what}")))
    }

    /// All positionals from index `from` on (may be empty).
    pub fn rest(&self, from: usize) -> &[String] {
        self.positionals.get(from..).unwrap_or(&[])
    }

    /// `--key value` option.
    pub fn option(&self, key: &str) -> Option<String> {
        self.options.get(key).cloned()
    }

    /// Numeric option with default.
    pub fn number(&self, key: &str, default: u64) -> Result<u64, ParseError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .replace('_', "")
                .parse()
                .map_err(|_| ParseError::new(format!("--{key} expects a number, got `{v}`"))),
        }
    }

    /// Boolean flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_mixed_arguments() {
        let a = Args::parse(&argv("run art --config wib2k --insts 50_000 --cosim")).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.positional(1, "bench").unwrap(), "art");
        assert_eq!(a.option("config").unwrap(), "wib2k");
        assert_eq!(a.number("insts", 0).unwrap(), 50_000);
        assert!(a.flag("cosim"));
        assert!(!a.flag("tiny"));
    }

    #[test]
    fn rejects_unknown_and_valueless_options() {
        assert!(Args::parse(&argv("run --bogus")).is_err());
        assert!(Args::parse(&argv("run --config")).is_err());
        assert!(Args::parse(&argv("")).is_err());
    }

    #[test]
    fn numeric_errors_are_reported() {
        let a = Args::parse(&argv("run x --insts banana")).unwrap();
        assert!(a.number("insts", 0).is_err());
        assert_eq!(a.number("warmup", 7).unwrap(), 7);
    }
}
