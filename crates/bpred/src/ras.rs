//! Return-address stack with pointer-and-data repair.
//!
//! Calls push the return address at fetch (speculatively); returns pop the
//! predicted target. Because pushes and pops happen on the wrong path too,
//! every branch checkpoint records the top-of-stack *pointer and the value
//! under it* — restoring both repairs the RAS exactly for the common case
//! of one net push/pop on the wrong path (Skadron et al.'s
//! pointer-and-data scheme, which the paper adopts).

/// Snapshot for repair: the stack pointer and the entry it points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasCheckpoint {
    tos: usize,
    top_value: u32,
}

/// A circular return-address stack.
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<u32>,
    /// Index of the *next free* slot; the newest entry is at `tos - 1`.
    tos: usize,
}

impl Ras {
    /// Build an empty RAS with `entries` slots.
    ///
    /// # Panics
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Ras {
        assert!(entries > 0);
        Ras {
            stack: vec![0; entries],
            tos: 0,
        }
    }

    fn wrap(&self, i: usize) -> usize {
        i % self.stack.len()
    }

    fn top_index(&self) -> usize {
        self.wrap(self.tos + self.stack.len() - 1)
    }

    /// Push a return address (on a call).
    pub fn push(&mut self, ret_addr: u32) {
        let i = self.tos;
        self.stack[i] = ret_addr;
        self.tos = self.wrap(self.tos + 1);
    }

    /// Pop the predicted return target (on a return).
    pub fn pop(&mut self) -> u32 {
        self.tos = self.top_index();
        self.stack[self.tos]
    }

    /// Capture the pointer-and-data checkpoint.
    pub fn checkpoint(&self) -> RasCheckpoint {
        RasCheckpoint {
            tos: self.tos,
            top_value: self.stack[self.top_index()],
        }
    }

    /// Restore a checkpoint taken earlier.
    pub fn restore(&mut self, ckpt: &RasCheckpoint) {
        self.tos = ckpt.tos;
        let top = self.top_index();
        self.stack[top] = ckpt.top_value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_behaviour() {
        let mut r = Ras::new(8);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), 0x200);
        assert_eq!(r.pop(), 0x100);
    }

    #[test]
    fn wraps_around() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), 3);
        assert_eq!(r.pop(), 2);
        assert_eq!(r.pop(), 3); // wrapped: oldest lost
    }

    #[test]
    fn repair_after_wrong_path_pop() {
        let mut r = Ras::new(8);
        r.push(0xaaa);
        let ckpt = r.checkpoint();
        // Wrong path pops the entry and pushes junk over it.
        let _ = r.pop();
        r.push(0xbad);
        r.restore(&ckpt);
        assert_eq!(r.pop(), 0xaaa);
    }

    #[test]
    fn repair_after_wrong_path_push() {
        let mut r = Ras::new(8);
        r.push(0x111);
        r.push(0x222);
        let ckpt = r.checkpoint();
        r.push(0xdead); // wrong-path call
        r.restore(&ckpt);
        assert_eq!(r.pop(), 0x222);
        assert_eq!(r.pop(), 0x111);
    }
}
