//! Load-store wait prediction (the 21264's store-wait table).
//!
//! A load that previously executed before an older, conflicting store is
//! marked in this table; future instances of that load wait until all
//! older stores have resolved their addresses. Per Table 1 the table has
//! 2048 one-bit entries and is cleared every 32768 cycles so stale wait
//! bits do not throttle the machine forever.

/// The store-wait table.
#[derive(Debug, Clone)]
pub struct StoreWaitTable {
    bits: Vec<bool>,
    clear_interval: u64,
    next_clear: u64,
    sets: u64,
}

impl StoreWaitTable {
    /// The paper's configuration: 2048 entries, cleared every 32768 cycles.
    pub fn isca2002() -> StoreWaitTable {
        StoreWaitTable::new(2048, 32768)
    }

    /// Build a table with `entries` bits cleared every `clear_interval`
    /// cycles.
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two or is zero.
    pub fn new(entries: usize, clear_interval: u64) -> StoreWaitTable {
        assert!(entries > 0 && entries.is_power_of_two());
        StoreWaitTable {
            bits: vec![false; entries],
            clear_interval,
            next_clear: clear_interval,
            sets: 0,
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.bits.len() - 1)
    }

    /// Should the load at `pc` wait for older stores?
    pub fn should_wait(&self, pc: u32) -> bool {
        self.bits[self.index(pc)]
    }

    /// Record that the load at `pc` caused an order violation.
    pub fn mark(&mut self, pc: u32) {
        let idx = self.index(pc);
        self.bits[idx] = true;
        self.sets += 1;
    }

    /// Advance time; clears the table when the interval elapses.
    pub fn tick(&mut self, now: u64) {
        if now >= self.next_clear {
            self.bits.fill(false);
            // Skip forward in whole intervals (robust to large time jumps).
            while self.next_clear <= now {
                self.next_clear += self.clear_interval;
            }
        }
    }

    /// Number of times a bit was set.
    pub fn marks(&self) -> u64 {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_test() {
        let mut t = StoreWaitTable::isca2002();
        assert!(!t.should_wait(0x400));
        t.mark(0x400);
        assert!(t.should_wait(0x400));
        assert_eq!(t.marks(), 1);
    }

    #[test]
    fn aliasing_is_possible() {
        let mut t = StoreWaitTable::new(4, 100);
        t.mark(0x0);
        assert!(t.should_wait(0x10)); // (0x10>>2)&3 == 0: aliases
    }

    #[test]
    fn periodic_clear() {
        let mut t = StoreWaitTable::new(16, 100);
        t.mark(0x8);
        t.tick(99);
        assert!(t.should_wait(0x8));
        t.tick(100);
        assert!(!t.should_wait(0x8));
        // Re-mark and jump far ahead: still clears exactly once per call.
        t.mark(0x8);
        t.tick(1_000_000);
        assert!(!t.should_wait(0x8));
    }
}
