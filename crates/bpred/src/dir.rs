//! Direction prediction: bimodal + two-level adaptive, combined by a
//! chooser, with speculative global-history update and fixup.

/// Saturating 2-bit counter helpers on a `u8` in `0..=3`.
#[inline]
fn ctr_taken(c: u8) -> bool {
    c >= 2
}

#[inline]
fn ctr_update(c: u8, taken: bool) -> u8 {
    if taken {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

/// Sizing of the combined predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirConfig {
    /// Entries in the bimodal table (power of two).
    pub bimodal_entries: u32,
    /// Global history length in bits; the PHT has `2^history_bits` entries.
    pub history_bits: u32,
    /// Entries in the chooser table (power of two).
    pub chooser_entries: u32,
}

impl DirConfig {
    /// A 4K-bimodal / 12-bit-history / 4K-chooser predictor, in the spirit
    /// of the paper's "bimodal & two-level adaptive combined".
    pub fn isca2002() -> DirConfig {
        DirConfig {
            bimodal_entries: 4096,
            history_bits: 12,
            chooser_entries: 4096,
        }
    }
}

/// State captured at prediction time, used to train and (on a
/// misprediction) repair the predictor when the branch resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchCheckpoint {
    /// Global history *before* this branch's speculative update.
    pub history: u32,
    bimodal_idx: u32,
    pht_idx: u32,
    chooser_idx: u32,
    bimodal_pred: bool,
    twolevel_pred: bool,
}

/// The outcome of a direction prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Checkpoint to pass back to [`CombinedPredictor::resolve`].
    pub ckpt: BranchCheckpoint,
}

/// Combined bimodal + two-level (global history) direction predictor.
#[derive(Debug, Clone)]
pub struct CombinedPredictor {
    bimodal: Vec<u8>,
    pht: Vec<u8>,
    chooser: Vec<u8>,
    history: u32,
    history_mask: u32,
    lookups: u64,
    mispredicts: u64,
}

impl CombinedPredictor {
    /// Build a predictor with all counters weakly not-taken / no bias.
    ///
    /// # Panics
    /// Panics if any table size is not a power of two.
    pub fn new(cfg: DirConfig) -> CombinedPredictor {
        assert!(cfg.bimodal_entries.is_power_of_two());
        assert!(cfg.chooser_entries.is_power_of_two());
        assert!(cfg.history_bits >= 1 && cfg.history_bits <= 20);
        CombinedPredictor {
            bimodal: vec![1; cfg.bimodal_entries as usize],
            pht: vec![1; 1usize << cfg.history_bits],
            chooser: vec![1; cfg.chooser_entries as usize],
            history: 0,
            history_mask: (1u32 << cfg.history_bits) - 1,
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn bimodal_idx(&self, pc: u32) -> u32 {
        (pc >> 2) & (self.bimodal.len() as u32 - 1)
    }

    fn pht_idx(&self, pc: u32, history: u32) -> u32 {
        // gshare-style hash of history with the PC.
        (history ^ (pc >> 2)) & self.history_mask
    }

    fn chooser_idx(&self, pc: u32) -> u32 {
        (pc >> 2) & (self.chooser.len() as u32 - 1)
    }

    /// Predict the branch at `pc` and speculatively update the global
    /// history with the prediction.
    pub fn predict(&mut self, pc: u32) -> Prediction {
        self.lookups += 1;
        let history = self.history;
        let bimodal_idx = self.bimodal_idx(pc);
        let pht_idx = self.pht_idx(pc, history);
        let chooser_idx = self.chooser_idx(pc);
        let bimodal_pred = ctr_taken(self.bimodal[bimodal_idx as usize]);
        let twolevel_pred = ctr_taken(self.pht[pht_idx as usize]);
        let use_twolevel = ctr_taken(self.chooser[chooser_idx as usize]);
        let taken = if use_twolevel {
            twolevel_pred
        } else {
            bimodal_pred
        };
        // Speculative history update (history-based fixup on mispredict).
        self.history = ((history << 1) | taken as u32) & self.history_mask;
        Prediction {
            taken,
            ckpt: BranchCheckpoint {
                history,
                bimodal_idx,
                pht_idx,
                chooser_idx,
                bimodal_pred,
                twolevel_pred,
            },
        }
    }

    /// Resolve a previously predicted branch: train the tables and, if
    /// `actual` differs from the prediction implied by `ckpt`'s chooser
    /// path, rewind the speculative history.
    ///
    /// `mispredicted` must be true iff the *direction* was wrong (the
    /// caller also handles target mispredictions, which do not perturb the
    /// history since the direction was right).
    pub fn resolve(&mut self, ckpt: &BranchCheckpoint, actual: bool, mispredicted: bool) {
        // Train both components with the actual outcome.
        let b = &mut self.bimodal[ckpt.bimodal_idx as usize];
        *b = ctr_update(*b, actual);
        let p = &mut self.pht[ckpt.pht_idx as usize];
        *p = ctr_update(*p, actual);
        // Chooser trains toward whichever component was right (when they
        // disagree).
        if ckpt.bimodal_pred != ckpt.twolevel_pred {
            let c = &mut self.chooser[ckpt.chooser_idx as usize];
            *c = ctr_update(*c, ckpt.twolevel_pred == actual);
        }
        if mispredicted {
            self.mispredicts += 1;
            // History-based fixup: rewind to the pre-branch history and
            // insert the true outcome. Any younger speculative bits are
            // wrong-path and discarded with the squash.
            self.history = ((ckpt.history << 1) | actual as u32) & self.history_mask;
        }
    }

    /// Restore the history register to `ckpt` without training (used when
    /// a squash originates from something other than this branch, e.g. a
    /// load-store order violation replaying from an older instruction).
    pub fn rewind(&mut self, ckpt: &BranchCheckpoint, actual: bool) {
        self.history = ((ckpt.history << 1) | actual as u32) & self.history_mask;
    }

    /// The current (speculative) global history.
    pub fn history(&self) -> u32 {
        self.history
    }

    /// Overwrite the history register (squash recovery that replays from
    /// an arbitrary instruction, e.g. a load-store order violation: the
    /// core restores the history snapshot taken when that instruction was
    /// fetched).
    pub fn set_history(&mut self, history: u32) {
        self.history = history & self.history_mask;
    }

    /// `(lookups, direction mispredictions)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.mispredicts)
    }

    /// Direction-prediction hit rate (1.0 when idle).
    pub fn direction_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.lookups as f64
        }
    }

    /// Reset statistics, keeping learned state.
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.mispredicts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred() -> CombinedPredictor {
        CombinedPredictor::new(DirConfig::isca2002())
    }

    #[test]
    fn learns_always_taken() {
        let mut p = pred();
        let pc = 0x1000;
        let mut wrong = 0;
        for _ in 0..100 {
            let pr = p.predict(pc);
            let mis = pr.taken != true;
            if mis {
                wrong += 1;
            }
            p.resolve(&pr.ckpt, true, mis);
        }
        assert!(
            wrong <= 2,
            "bimodal should converge quickly, got {wrong} wrong"
        );
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = pred();
        let pc = 0x2000;
        let mut wrong_late = 0;
        for i in 0..400 {
            let actual = i % 2 == 0;
            let pr = p.predict(pc);
            let mis = pr.taken != actual;
            if mis && i >= 200 {
                wrong_late += 1;
            }
            p.resolve(&pr.ckpt, actual, mis);
        }
        // A 12-bit global history trivially captures period-2 patterns;
        // bimodal alone cannot.
        assert!(
            wrong_late <= 4,
            "two-level should capture alternation, got {wrong_late}"
        );
    }

    #[test]
    fn speculative_history_advances_and_repairs() {
        let mut p = pred();
        let h0 = p.history();
        let pr = p.predict(0x3000);
        assert_eq!(p.history() & 1, pr.taken as u32);
        // Mispredict: history must rewind to checkpoint + actual bit.
        let actual = !pr.taken;
        p.resolve(&pr.ckpt, actual, true);
        assert_eq!(p.history(), ((h0 << 1) | actual as u32) & 0xfff);
    }

    #[test]
    fn nested_speculation_repair() {
        let mut p = pred();
        // Three in-flight branches, the middle one mispredicts.
        let pr1 = p.predict(0x100);
        let pr2 = p.predict(0x104);
        let _pr3 = p.predict(0x108);
        p.resolve(&pr1.ckpt, pr1.taken, false);
        let actual2 = !pr2.taken;
        p.resolve(&pr2.ckpt, actual2, true);
        // History reflects branch1's outcome then branch2's actual only.
        assert_eq!(
            p.history(),
            ((pr2.ckpt.history << 1) | actual2 as u32) & 0xfff
        );
    }

    #[test]
    fn stats_track_rate() {
        let mut p = pred();
        for i in 0..10 {
            let pr = p.predict(0x500);
            let actual = i < 5;
            p.resolve(&pr.ckpt, actual, pr.taken != actual);
        }
        let (lookups, _) = p.stats();
        assert_eq!(lookups, 10);
        assert!(p.direction_rate() <= 1.0);
        p.reset_stats();
        assert_eq!(p.stats(), (0, 0));
        assert_eq!(p.direction_rate(), 1.0);
    }
}
