//! Branch target buffer.
//!
//! Set-associative table of taken-branch targets consulted at fetch. Per
//! the paper's Table 1, a direct jump that misses the BTB costs 2 cycles
//! (the target is computable at decode), while other BTB misses cost 9
//! cycles (the target is only known at execute).

/// BTB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Ways per set.
    pub assoc: u32,
}

impl BtbConfig {
    /// 512 sets x 4 ways = 2048 entries.
    pub fn isca2002() -> BtbConfig {
        BtbConfig {
            sets: 512,
            assoc: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u32,
    target: u32,
    lru: u64,
}

/// A set-associative branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Entry>,
    sets: u32,
    assoc: u32,
    tick: u64,
    lookups: u64,
    hits: u64,
}

impl Btb {
    /// Build an empty BTB.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two or `assoc` is zero.
    pub fn new(cfg: BtbConfig) -> Btb {
        assert!(cfg.sets.is_power_of_two() && cfg.assoc >= 1);
        Btb {
            entries: vec![Entry::default(); (cfg.sets * cfg.assoc) as usize],
            sets: cfg.sets,
            assoc: cfg.assoc,
            tick: 0,
            lookups: 0,
            hits: 0,
        }
    }

    fn set_range(&self, pc: u32) -> std::ops::Range<usize> {
        let set = (pc >> 2) & (self.sets - 1);
        let start = (set * self.assoc) as usize;
        start..start + self.assoc as usize
    }

    fn tag(pc: u32) -> u32 {
        pc >> 2
    }

    /// Look up the predicted target for the control instruction at `pc`.
    pub fn lookup(&mut self, pc: u32) -> Option<u32> {
        self.lookups += 1;
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(pc);
        let tag = Btb::tag(pc);
        for e in &mut self.entries[range] {
            if e.valid && e.tag == tag {
                e.lru = tick;
                self.hits += 1;
                return Some(e.target);
            }
        }
        None
    }

    /// Install or refresh the target for `pc`.
    pub fn update(&mut self, pc: u32, target: u32) {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(pc);
        let tag = Btb::tag(pc);
        // Update in place if present.
        if let Some(e) = self.entries[range.clone()]
            .iter_mut()
            .find(|e| e.valid && e.tag == tag)
        {
            e.target = target;
            e.lru = tick;
            return;
        }
        let victim = self.entries[range]
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("assoc >= 1");
        *victim = Entry {
            valid: true,
            tag,
            target,
            lru: tick,
        };
    }

    /// `(lookups, hits)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }

    /// Reset statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut b = Btb::new(BtbConfig::isca2002());
        assert_eq!(b.lookup(0x1000), None);
        b.update(0x1000, 0x2000);
        assert_eq!(b.lookup(0x1000), Some(0x2000));
        assert_eq!(b.stats(), (2, 1));
    }

    #[test]
    fn update_in_place() {
        let mut b = Btb::new(BtbConfig::isca2002());
        b.update(0x1000, 0x2000);
        b.update(0x1000, 0x3000);
        assert_eq!(b.lookup(0x1000), Some(0x3000));
    }

    #[test]
    fn conflict_eviction_is_lru() {
        let mut b = Btb::new(BtbConfig { sets: 1, assoc: 2 });
        b.update(0x100, 1);
        b.update(0x200, 2);
        b.lookup(0x100); // make 0x200 the LRU
        b.update(0x300, 3); // evicts 0x200
        assert_eq!(b.lookup(0x100), Some(1));
        assert_eq!(b.lookup(0x200), None);
        assert_eq!(b.lookup(0x300), Some(3));
    }
}
