//! Branch-prediction substrate for the WIB simulator.
//!
//! Matches the paper's Table 1 front end: a **combined** bimodal +
//! two-level adaptive direction predictor with *speculative history
//! update* and history-based fixup on misprediction, a BTB (2-cycle
//! penalty for direct jumps that miss, 9 cycles for others), a
//! return-address stack with **pointer-and-data repair**, and the
//! 2048-entry **store-wait table** cleared every 32768 cycles used for
//! load-store wait prediction.
//!
//! Speculative update protocol: [`dir::CombinedPredictor::predict`]
//! immediately shifts the *predicted* outcome into the global history and
//! returns a [`dir::BranchCheckpoint`]. When the branch resolves, call
//! [`dir::CombinedPredictor::resolve`] with the checkpoint and the actual
//! outcome — counters train with the history the prediction actually used,
//! and a misprediction rewinds the history register to the checkpoint
//! before shifting in the true outcome.

pub mod btb;
pub mod dir;
pub mod ras;
pub mod storewait;

pub use btb::{Btb, BtbConfig};
pub use dir::{BranchCheckpoint, CombinedPredictor, DirConfig, Prediction};
pub use ras::{Ras, RasCheckpoint};
pub use storewait::StoreWaitTable;
