//! Property tests: predictor history repair and RAS pointer-and-data
//! recovery.

use proptest::prelude::*;
use wib_bpred::dir::{CombinedPredictor, DirConfig};
use wib_bpred::ras::Ras;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// After any interleaving of predictions, resolving a branch as
    /// mispredicted must leave history == (checkpoint << 1) | actual,
    /// masked — regardless of how many younger speculative bits piled up.
    #[test]
    fn history_fixup_is_exact(
        pcs in prop::collection::vec(0u32..4096, 1..20),
        mispredict_at in 0usize..19,
        actual in any::<bool>(),
    ) {
        let mut p = CombinedPredictor::new(DirConfig::isca2002());
        let mut ckpts = Vec::new();
        for &pc in &pcs {
            ckpts.push(p.predict(pc * 4).ckpt);
        }
        let i = mispredict_at % pcs.len();
        p.resolve(&ckpts[i], actual, true);
        let mask = (1u32 << 12) - 1;
        prop_assert_eq!(p.history(), ((ckpts[i].history << 1) | actual as u32) & mask);
    }

    /// Training never breaks determinism: two identical predictors fed
    /// identical streams stay identical.
    #[test]
    fn predictor_is_deterministic(
        stream in prop::collection::vec((0u32..1024, any::<bool>()), 1..100)
    ) {
        let mut a = CombinedPredictor::new(DirConfig::isca2002());
        let mut b = CombinedPredictor::new(DirConfig::isca2002());
        for &(pc, outcome) in &stream {
            let pa = a.predict(pc * 4);
            let pb = b.predict(pc * 4);
            prop_assert_eq!(pa.taken, pb.taken);
            a.resolve(&pa.ckpt, outcome, pa.taken != outcome);
            b.resolve(&pb.ckpt, outcome, pb.taken != outcome);
        }
        prop_assert_eq!(a.history(), b.history());
    }

    /// Pointer-and-data repair: one checkpoint undoes any single
    /// wrong-path push or pop (the common cases the scheme targets).
    #[test]
    fn ras_repairs_single_perturbations(
        pushes in prop::collection::vec(1u32..0xffff, 1..8),
        wrong_push in any::<bool>(),
    ) {
        let mut ras = Ras::new(16);
        for &v in &pushes {
            ras.push(v);
        }
        let ckpt = ras.checkpoint();
        if wrong_push {
            ras.push(0xdead);
        } else {
            let _ = ras.pop();
            ras.push(0xbeef); // overwrite what was there
        }
        ras.restore(&ckpt);
        // The stack now pops the original values (up to capacity).
        for &v in pushes.iter().rev() {
            prop_assert_eq!(ras.pop(), v);
        }
    }
}
