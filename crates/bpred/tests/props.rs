//! Randomized property tests: predictor history repair and RAS
//! pointer-and-data recovery, driven by fixed seeds so the suite runs
//! fully offline and reproduces exactly.

use wib_bpred::dir::{CombinedPredictor, DirConfig};
use wib_bpred::ras::Ras;
use wib_rng::StdRng;

/// After any interleaving of predictions, resolving a branch as
/// mispredicted must leave history == (checkpoint << 1) | actual,
/// masked — regardless of how many younger speculative bits piled up.
#[test]
fn history_fixup_is_exact() {
    let mut r = StdRng::seed_from_u64(0xb9ed_0001);
    for _ in 0..256 {
        let n = r.random_range(1..20usize);
        let pcs: Vec<u32> = (0..n).map(|_| r.random_range(0u32..4096)).collect();
        let mispredict_at: usize = r.random_range(0..19);
        let actual: bool = r.random();

        let mut p = CombinedPredictor::new(DirConfig::isca2002());
        let mut ckpts = Vec::new();
        for &pc in &pcs {
            ckpts.push(p.predict(pc * 4).ckpt);
        }
        let i = mispredict_at % pcs.len();
        p.resolve(&ckpts[i], actual, true);
        let mask = (1u32 << 12) - 1;
        assert_eq!(
            p.history(),
            ((ckpts[i].history << 1) | actual as u32) & mask
        );
    }
}

/// Training never breaks determinism: two identical predictors fed
/// identical streams stay identical.
#[test]
fn predictor_is_deterministic() {
    let mut r = StdRng::seed_from_u64(0xb9ed_0002);
    for _ in 0..256 {
        let n = r.random_range(1..100usize);
        let stream: Vec<(u32, bool)> = (0..n)
            .map(|_| (r.random_range(0u32..1024), r.random()))
            .collect();

        let mut a = CombinedPredictor::new(DirConfig::isca2002());
        let mut b = CombinedPredictor::new(DirConfig::isca2002());
        for &(pc, outcome) in &stream {
            let pa = a.predict(pc * 4);
            let pb = b.predict(pc * 4);
            assert_eq!(pa.taken, pb.taken);
            a.resolve(&pa.ckpt, outcome, pa.taken != outcome);
            b.resolve(&pb.ckpt, outcome, pb.taken != outcome);
        }
        assert_eq!(a.history(), b.history());
    }
}

/// Pointer-and-data repair: one checkpoint undoes any single wrong-path
/// push or pop (the common cases the scheme targets).
#[test]
fn ras_repairs_single_perturbations() {
    let mut r = StdRng::seed_from_u64(0xb9ed_0003);
    for _ in 0..256 {
        let n = r.random_range(1..8usize);
        let pushes: Vec<u32> = (0..n).map(|_| r.random_range(1u32..0xffff)).collect();
        let wrong_push: bool = r.random();

        let mut ras = Ras::new(16);
        for &v in &pushes {
            ras.push(v);
        }
        let ckpt = ras.checkpoint();
        if wrong_push {
            ras.push(0xdead);
        } else {
            let _ = ras.pop();
            ras.push(0xbeef); // overwrite what was there
        }
        ras.restore(&ckpt);
        // The stack now pops the original values (up to capacity).
        for &v in pushes.iter().rev() {
            assert_eq!(ras.pop(), v);
        }
    }
}
